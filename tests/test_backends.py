"""Tests for the execution-backend seam and the in-band scheduler.

Covers the `repro.backends` registry (four policies behind one
`RunConfig.backend` string), the physics contract between them
(cpu-fused / cpu-parallel / hybrid bitwise identical on tier-1 meshes,
cpu-serial an independent reference within a few ULP), the deprecated
`workers=` / `engine=` spellings, the `repro.sched.OnlineScheduler`
(convergence within the paper's 12-14 sampling periods, cache
persistence, warm start skipping the campaign), `TuningCache`
corruption recovery, and the resilient driver's hybrid -> cpu-fused
backend swap on a sticky GPU fault.

Tests named `test_smoke_*` form the fast subset
(`pytest -q tests/test_backends.py -k smoke`).
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro import LagrangianHydroSolver, SedovProblem
from repro.api import RunConfig, run
from repro.backends import (
    BACKEND_NAMES,
    CpuParallelBackend,
    ExecutionBackend,
    HybridBackend,
    make_backend,
)
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.hydro.solver import SolverOptions
from repro.kernels import FEConfig
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    GpuOffloadPricer,
    ResilientDriver,
)
from repro.runtime.hybrid import HybridExecutor
from repro.sched import OnlineScheduler, SchedulerConfig, kernel_campaigns
from repro.tuning import TuningCache, TuningCacheCorruptionError
from repro.tuning.balance import AutoBalancer


def sedov(zones=4):
    return SedovProblem(dim=2, order=2, zones_per_dim=zones)


# A horizon no tiny test run reaches: runs are bounded by max_steps.
FAR = 100.0


def state_hash(state) -> str:
    """SHA-256 over the raw bytes of the evolved fields (bitwise)."""
    h = hashlib.sha256()
    for arr in (state.x, state.v, state.e):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def run_backend(backend: str, zones=4, steps=2, **cfg_kw):
    """Two-step Sedov under one backend; returns (result, solver)."""
    solver = LagrangianHydroSolver(
        sedov(zones), options=RunConfig(backend=backend, **cfg_kw)
    )
    try:
        return solver.run(t_final=FAR, max_steps=steps), solver
    finally:
        solver.close()


# ---------------------------------------------------------------------------
# Registry + protocol


class TestBackendRegistry:
    def test_smoke_make_backend_all_names(self):
        for name in BACKEND_NAMES:
            assert make_backend(name).name == name
        # Protocol conformance is checked on an *attached* backend —
        # unattached ones raise from `force_fn` by design.
        solver = LagrangianHydroSolver(sedov())
        try:
            assert isinstance(solver.backend, ExecutionBackend)
        finally:
            solver.close()

    def test_smoke_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="cpu-fused"):
            make_backend("tpu")

    def test_describe_before_attach(self):
        for name in BACKEND_NAMES:
            d = make_backend(name).describe()
            assert d["backend"] == name

    def test_force_fn_requires_attach(self):
        with pytest.raises(RuntimeError, match="not attached"):
            make_backend("cpu-fused").force_fn

    def test_double_attach_rejected(self):
        solver = LagrangianHydroSolver(sedov())
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                solver.backend.attach(solver)
        finally:
            solver.close()


# ---------------------------------------------------------------------------
# Physics contract across backends


class TestBackendPhysics:
    def test_smoke_backends_bit_identical(self):
        """Acceptance: the backends agree on a 2-step Sedov run.

        cpu-fused, cpu-parallel and hybrid share the fused arithmetic
        and must match *bitwise*; cpu-serial is the independently
        written staged reference and agrees to a few ULP (that gap is
        the evidence the fused pipeline computes the same physics).
        """
        hashes = {}
        results = {}
        for name in BACKEND_NAMES:
            res, _ = run_backend(name)
            hashes[name] = state_hash(res.state)
            results[name] = res
        assert hashes["cpu-fused"] == hashes["cpu-parallel"] == hashes["hybrid"]
        ref, legacy = results["cpu-fused"].state, results["cpu-serial"].state
        np.testing.assert_allclose(legacy.v, ref.v, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(legacy.e, ref.e, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(legacy.x, ref.x, rtol=1e-12, atol=1e-14)

    def test_parallel_pinned_chunks_worker_count_never_changes_bits(self):
        """Pinning `chunks=K` makes the span partition — and therefore
        the result bits — invariant under the worker count. (The default
        partition is chunks == workers, which trades that invariance for
        the coarsest, fastest schedule; the bitwise-vs-serial contract
        at the default lives in test_hotpath.)"""
        hashes = []
        for workers in (2, 3):
            solver = LagrangianHydroSolver(
                sedov(8), backend=CpuParallelBackend(workers=workers, chunks=4)
            )
            try:
                res = solver.run(t_final=FAR, max_steps=2)
                hashes.append(state_hash(res.state))
            finally:
                solver.close()
        assert hashes[0] == hashes[1]

    def test_hybrid_matches_fused_on_larger_mesh(self):
        hf = state_hash(run_backend("cpu-fused", zones=8)[0].state)
        hh = state_hash(run_backend("hybrid", zones=8)[0].state)
        assert hf == hh


# ---------------------------------------------------------------------------
# Deprecated spellings route into the backend selector


class TestDeprecatedKnobs:
    def test_smoke_legacy_knobs_resolve_to_backends(self):
        assert RunConfig().resolved_backend == "cpu-fused"
        assert RunConfig(workers=2).resolved_backend == "cpu-parallel"
        assert RunConfig(engine="legacy").resolved_backend == "cpu-serial"
        assert RunConfig(backend="hybrid").resolved_backend == "hybrid"

    def test_conflicting_knobs_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            RunConfig(workers=2, backend="cpu-fused")
        with pytest.raises(ValueError, match="legacy"):
            RunConfig(engine="legacy", backend="hybrid")
        with pytest.raises(ValueError, match="backend"):
            RunConfig(backend="openmp")

    def test_solver_options_warns_and_routes(self):
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            opts = SolverOptions(workers=2)
        assert opts.config.resolved_backend == "cpu-parallel"
        with pytest.warns(DeprecationWarning):
            opts = SolverOptions(fused=False)
        assert opts.config.resolved_backend == "cpu-serial"


# ---------------------------------------------------------------------------
# AutoBalancer incremental API


class TestAutoBalancer:
    def test_is_balanced_symmetric_tolerance(self):
        assert AutoBalancer.is_balanced(1.0, 1.0, 0.02)
        assert AutoBalancer.is_balanced(1.0, 1.019, 0.02)
        assert not AutoBalancer.is_balanced(1.0, 1.05, 0.02)
        assert not AutoBalancer.is_balanced(1.05, 1.0, 0.02)

    def test_update_moves_toward_slower_side(self):
        # GPU finishing early => give it more work.
        up = AutoBalancer.update_ratio(0.5, t_gpu=0.5, t_cpu=1.0, damping=0.5)
        assert up > 0.5
        down = AutoBalancer.update_ratio(0.5, t_gpu=1.0, t_cpu=0.5, damping=0.5)
        assert down < 0.5

    def test_converges_within_paper_periods_under_noise(self):
        """Acceptance: with the optimum at a 75% GPU share and 2%
        timer noise averaged over a 40-step period, the damped update
        reaches balance within the paper's 12-14 sampling periods."""
        rng = np.random.default_rng(1234)
        sigma = 0.02 / np.sqrt(40.0)
        ratio, periods = 0.5, 0
        for periods in range(1, 15):
            t_gpu = (ratio / 0.75) * (1.0 + rng.normal(0.0, sigma))
            t_cpu = ((1.0 - ratio) / 0.25) * (1.0 + rng.normal(0.0, sigma))
            if AutoBalancer.is_balanced(t_gpu, t_cpu, 0.02):
                break
            ratio = AutoBalancer.update_ratio(ratio, t_gpu, t_cpu, 0.35)
        else:
            pytest.fail(f"no convergence in 14 periods (ratio={ratio:.4f})")
        assert periods <= 14
        assert ratio == pytest.approx(0.75, abs=0.02)


# ---------------------------------------------------------------------------
# In-band scheduling: tune -> balance -> done, persistence, warm start


class TestInBandScheduler:
    def _config(self, cache_path, **kw):
        return RunConfig(
            backend="hybrid",
            tune_period_steps=1,
            tuning_cache=str(cache_path),
            max_steps=60,
            t_final=FAR,
            **kw,
        )

    def test_smoke_inband_tuning_converges_and_persists(self, tmp_path):
        cache_path = tmp_path / "tuning.json"
        report = run(sedov(), self._config(cache_path)).scheduler
        assert report is not None
        assert not report.warm_started
        assert report.converged
        assert set(report.winners) == {"kernel3", "kernel5", "kernel7"}
        # One candidate per period across the three campaigns, then the
        # paper's 12-14 balance periods (deterministic seeded noise).
        assert report.periods_tune >= 3
        assert 1 <= report.periods_balance <= 14
        assert 0.01 <= report.ratio <= 0.99
        # Winners and the converged split landed in the cache.
        cache = TuningCache(cache_path)
        spec, cfg = get_gpu("K20"), FEConfig(dim=2, order=2, nzones=16)
        for kernel in ("kernel3", "kernel5", "kernel7"):
            assert cache.lookup(spec, cfg, kernel, backend="hybrid") is not None
        balance = cache.lookup(spec, cfg, "balance", backend="hybrid")
        assert balance is not None
        assert balance["ratio"] == pytest.approx(report.ratio)

    def test_smoke_warm_start_skips_campaign(self, tmp_path):
        """Acceptance: a second run on the same device fingerprint and
        FE config adopts the cached winners and runs zero periods."""
        cache_path = tmp_path / "tuning.json"
        first = run(sedov(), self._config(cache_path)).scheduler
        assert first.converged and not first.warm_started
        second = run(sedov(), self._config(cache_path)).scheduler
        assert second.warm_started
        assert second.converged
        assert second.periods == 0
        assert second.ratio == pytest.approx(first.ratio)
        assert second.winners == first.winners

    def test_tuning_periods_become_trace_spans(self, tmp_path):
        cache_path = tmp_path / "tuning.json"
        rep = run(sedov(), self._config(cache_path, telemetry=True))
        spans = [s for s in rep.tracer.spans if s.name == "tuning_period"]
        assert len(spans) == rep.scheduler.periods
        names = [e["name"] for e in rep.tracer.events]
        assert "ratio_change" in names
        # Warm-started run: no periods, just the warm-start instant.
        rep2 = run(sedov(), self._config(cache_path, telemetry=True))
        assert not any(s.name == "tuning_period" for s in rep2.tracer.spans)
        assert any(e["name"] == "tuning_warm_start" for e in rep2.tracer.events)

    def test_partial_cache_does_not_warm_start(self, tmp_path):
        """Kernel winners without a converged ratio => full campaign."""
        cache_path = tmp_path / "tuning.json"
        cache = TuningCache(cache_path)
        spec, cfg = get_gpu("K20"), FEConfig(dim=2, order=2, nzones=16)
        cache.store(spec, cfg, "kernel3", {"matrices_per_block": 16},
                    backend="hybrid")
        report = run(sedov(), self._config(cache_path)).scheduler
        assert not report.warm_started
        assert report.periods_tune >= 3

    def test_different_device_misses_cache(self, tmp_path):
        """Porting to another architecture re-tunes automatically."""
        cache_path = tmp_path / "tuning.json"
        run(sedov(), self._config(cache_path))
        report = run(
            sedov(), self._config(cache_path, hybrid_device="C2050")
        ).scheduler
        assert not report.warm_started

    def test_scheduler_requires_attached_backend(self):
        with pytest.raises(ValueError, match="attached"):
            OnlineScheduler(HybridBackend())

    def test_campaigns_are_feasibility_filtered(self):
        cfg = FEConfig(dim=2, order=4, nzones=16)
        campaigns = kernel_campaigns(cfg, get_gpu("K20"))
        assert [c.kernel for c in campaigns] == ["kernel3", "kernel5", "kernel7"]
        for camp in campaigns:
            assert camp.candidates
            for v in camp.candidates:
                assert camp.time_fn(v) > 0.0

    def test_scheduler_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(steps_per_period=0)
        with pytest.raises(ValueError):
            SchedulerConfig(initial_ratio=1.5)
        with pytest.raises(ValueError):
            SchedulerConfig(objective="watts")
        with pytest.raises(ValueError):
            SchedulerConfig(strategy="annealing")

    def test_smoke_objective_isolation_in_band(self, tmp_path):
        """Regression: a cache populated under the default time
        objective never warm-starts an energy campaign — each objective
        re-tunes once and then warm-starts itself."""
        cache_path = tmp_path / "tuning.json"
        timed = run(sedov(), self._config(cache_path)).scheduler
        assert timed.converged and not timed.warm_started
        assert timed.objective == "time"

        energy = run(
            sedov(), self._config(cache_path, tuning_objective="energy")
        ).scheduler
        assert not energy.warm_started  # time's winners must not leak
        assert energy.converged
        assert energy.objective == "energy"

        # Both objectives now live side by side in one cache file ...
        rewarm_t = run(sedov(), self._config(cache_path)).scheduler
        rewarm_e = run(
            sedov(), self._config(cache_path, tuning_objective="energy")
        ).scheduler
        assert rewarm_t.warm_started and rewarm_t.objective == "time"
        assert rewarm_e.warm_started and rewarm_e.objective == "energy"

    def test_manifest_reports_campaign_identity(self, tmp_path):
        """Objective / strategy / evaluation count surface end to end."""
        cache_path = tmp_path / "tuning.json"
        report = run(
            sedov(),
            self._config(cache_path, tuning_objective="edp",
                         tuning_strategy="local"),
        )
        tuning = report.manifest.solver["tuning"]
        assert tuning["objective"] == "edp"
        assert tuning["strategy"] == "local"
        assert not tuning["warm_started"]
        assert tuning["converged"]
        assert 0 < tuning["evaluations"] <= tuning["feasible_points"]
        sched = report.scheduler
        assert sched.evaluations == tuning["evaluations"]
        assert sched.feasible_points == tuning["feasible_points"]


# ---------------------------------------------------------------------------
# TuningCache durability


class TestCacheDurability:
    def test_corrupt_json_recovered_leniently(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{ not json")
        cache = TuningCache(path)
        assert cache.recovered_from_corruption
        spec, cfg = get_gpu("K20"), FEConfig(dim=2, order=2, nzones=16)
        assert cache.lookup(spec, cfg, "kernel3") is None
        # The cache stays usable: a store round-trips through valid JSON.
        cache.store(spec, cfg, "kernel3", {"matrices_per_block": 8})
        assert json.loads(path.read_text())
        assert TuningCache(path).lookup(spec, cfg, "kernel3") == {
            "matrices_per_block": 8
        }

    def test_corrupt_json_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{ not json")
        with pytest.raises(TuningCacheCorruptionError):
            TuningCache(path, strict=True)

    def test_non_dict_payload_is_corruption(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TuningCacheCorruptionError):
            TuningCache(path, strict=True)
        assert TuningCache(path).recovered_from_corruption

    def test_store_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "tuning.json"
        cache = TuningCache(path)
        cache.store(get_gpu("K20"), FEConfig(dim=2, order=2, nzones=16),
                    "kernel3", {"matrices_per_block": 8})
        assert [f for f in os.listdir(tmp_path)] == ["tuning.json"]


# ---------------------------------------------------------------------------
# Resilience: sticky GPU fault swaps hybrid -> cpu-fused


class TestBackendSwapOnFault:
    def test_smoke_sticky_gpu_fault_swaps_backend(self):
        """Acceptance: under a sticky GPU fault the resilient driver
        swaps the hybrid backend for cpu-fused, stops the scheduler,
        and the physics still matches the fault-free run bit-for-bit
        (the two backends share the fused arithmetic)."""
        plain, _ = run_backend("cpu-fused", steps=8)
        injector = FaultInjector([FaultSpec("gpu", 3, sticky=True)])
        fe_cfg = FEConfig(dim=2, order=2, nzones=16)
        offload = GpuOffloadPricer(
            HybridExecutor(fe_cfg, get_cpu("E5-2670"), get_gpu("K20"), nmpi=1),
            injector=injector,
        )
        solver = LagrangianHydroSolver(
            sedov(), options=RunConfig(backend="hybrid")
        )
        driver = ResilientDriver(
            solver, injector=injector, checkpoint_every=4, offload=offload
        )
        res = driver.run(t_final=FAR, max_steps=8)
        assert res.report.fallbacks >= 1
        assert solver.backend.name == "cpu-fused"
        assert any(
            ev.kind == "gpu" and "backend swap" in ev.action
            for ev in res.report.faults
        )
        assert state_hash(res.state) == state_hash(plain.state)

    def test_fault_free_hybrid_run_keeps_backend(self):
        solver = LagrangianHydroSolver(
            sedov(), options=RunConfig(backend="hybrid")
        )
        driver = ResilientDriver(solver, checkpoint_every=4)
        driver.run(t_final=FAR, max_steps=6)
        assert solver.backend.name == "hybrid"

    def test_solver_swap_backend_repoints_force_fn(self):
        solver = LagrangianHydroSolver(sedov())
        try:
            assert solver.backend.name == "cpu-fused"
            solver.swap_backend("cpu-parallel")
            assert solver.backend.name == "cpu-parallel"
            assert solver.integrator.force_fn == solver.backend.force_fn
            res = solver.run(t_final=FAR, max_steps=2)
            assert res.steps == 2
        finally:
            solver.close()


# ---------------------------------------------------------------------------
# Hybrid backend pricing surface (what the scheduler drives)


class TestHybridBackendModel:
    def test_ratio_scales_gpu_side_linearly(self):
        b = HybridBackend()
        solver = LagrangianHydroSolver(sedov())
        try:
            b.attach(solver)
            full = b.gpu_time_s(1.0)
            assert b.gpu_time_s(0.5) == pytest.approx(full / 2)
            assert b.cpu_time_s(0.0) == 0.0
            assert b.cpu_time_s(1.0) > 0.0
        finally:
            solver.close()

    def test_apply_selection_reprices(self):
        from repro.kernels.registry import KernelSelection

        b = HybridBackend()
        solver = LagrangianHydroSolver(sedov())
        try:
            b.attach(solver)
            before = b.gpu_time_s(1.0)
            b.apply_selection(KernelSelection(gemm_matrices_per_block=1,
                                              batched_matrices_per_block=1,
                                              block_cols=1))
            after = b.gpu_time_s(1.0)
            assert after != before  # degenerate tiling must change the price
        finally:
            solver.close()
