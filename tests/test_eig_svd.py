"""Tests for closed-form symmetric eigendecomposition and small SVD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.eig import sym_eig_2x2, sym_eig_3x3, sym_eigvals
from repro.linalg.svd_small import batched_singular_values, batched_svd


def random_sym(rng, n, d):
    a = rng.standard_normal((n, d, d))
    return 0.5 * (a + np.swapaxes(a, -1, -2))


class TestSymEig2x2:
    def test_matches_numpy(self, rng):
        a = random_sym(rng, 50, 2)
        w, v = sym_eig_2x2(a)
        w_np, _ = np.linalg.eigh(a)
        assert np.allclose(w, w_np, atol=1e-12)

    def test_eigen_equation(self, rng):
        a = random_sym(rng, 30, 2)
        w, v = sym_eig_2x2(a)
        for k in range(2):
            assert np.allclose(
                np.einsum("bij,bj->bi", a, v[..., k]), w[..., k, None] * v[..., k], atol=1e-11
            )

    def test_orthonormal_vectors(self, rng):
        a = random_sym(rng, 30, 2)
        _, v = sym_eig_2x2(a)
        vtv = np.swapaxes(v, -1, -2) @ v
        assert np.allclose(vtv, np.eye(2), atol=1e-12)

    def test_diagonal_matrix(self):
        a = np.array([[[3.0, 0.0], [0.0, 1.0]]])
        w, v = sym_eig_2x2(a)
        assert np.allclose(w[0], [1.0, 3.0])

    def test_multiple_of_identity(self):
        a = 2.5 * np.broadcast_to(np.eye(2), (3, 2, 2)).copy()
        w, v = sym_eig_2x2(a)
        assert np.allclose(w, 2.5)
        assert np.allclose(np.swapaxes(v, -1, -2) @ v, np.eye(2), atol=1e-13)

    def test_ascending_order(self, rng):
        a = random_sym(rng, 40, 2)
        w, _ = sym_eig_2x2(a)
        assert np.all(np.diff(w, axis=-1) >= -1e-14)


class TestSymEig3x3:
    def test_matches_numpy(self, rng):
        a = random_sym(rng, 60, 3)
        w = sym_eigvals(a)
        w_np = np.linalg.eigvalsh(a)
        assert np.allclose(w, w_np, atol=1e-10)

    def test_eigen_equation(self, rng):
        a = random_sym(rng, 40, 3)
        w, v = sym_eig_3x3(a)
        for k in range(3):
            lhs = np.einsum("bij,bj->bi", a, v[..., k])
            assert np.allclose(lhs, w[..., k, None] * v[..., k], atol=1e-9)

    def test_orthonormal_vectors(self, rng):
        a = random_sym(rng, 40, 3)
        _, v = sym_eig_3x3(a)
        assert np.allclose(np.swapaxes(v, -1, -2) @ v, np.eye(3), atol=1e-10)

    def test_degenerate_pair(self):
        """Repeated eigenvalues route through the LAPACK fallback."""
        a = np.diag([2.0, 2.0, 5.0])[None]
        w, v = sym_eig_3x3(a)
        assert np.allclose(np.sort(w[0]), [2.0, 2.0, 5.0], atol=1e-12)
        assert np.allclose(np.swapaxes(v, -1, -2) @ v, np.eye(3), atol=1e-12)

    def test_identity(self):
        w, v = sym_eig_3x3(np.eye(3)[None])
        assert np.allclose(w, 1.0)
        assert np.allclose(v @ np.swapaxes(v, -1, -2), np.eye(3), atol=1e-13)

    def test_zero_matrix(self):
        w, v = sym_eig_3x3(np.zeros((2, 3, 3)))
        assert np.allclose(w, 0.0)

    def test_nonsymmetric_input_symmetrized(self, rng):
        a = rng.standard_normal((5, 3, 3))
        w, _ = sym_eig_3x3(a)
        sym = 0.5 * (a + np.swapaxes(a, -1, -2))
        assert np.allclose(w, np.linalg.eigvalsh(sym), atol=1e-10)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_trace_and_det_invariants(self, seed):
        rng = np.random.default_rng(seed)
        a = random_sym(rng, 8, 3)
        w = sym_eigvals(a)
        assert np.allclose(w.sum(axis=-1), np.trace(a, axis1=-2, axis2=-1), atol=1e-9)
        assert np.allclose(np.prod(w, axis=-1), np.linalg.det(a), atol=1e-8)

    def test_near_degenerate_robust(self, rng):
        """Almost-repeated eigenvalues still satisfy the eigen equation."""
        q, _ = np.linalg.qr(rng.standard_normal((3, 3)))
        w_true = np.array([1.0, 1.0 + 1e-9, 2.0])
        a = (q * w_true) @ q.T
        w, v = sym_eig_3x3(a[None])
        assert np.allclose(np.sort(w[0]), w_true, atol=1e-8)
        for k in range(3):
            assert np.allclose(a @ v[0][:, k], w[0, k] * v[0][:, k], atol=1e-7)


class TestSVD:
    @pytest.mark.parametrize("d", [2, 3])
    def test_singular_values_match_numpy(self, rng, d):
        a = rng.standard_normal((40, d, d))
        s = batched_singular_values(a)
        s_np = np.sort(np.linalg.svd(a, compute_uv=False), axis=-1)
        assert np.allclose(s, s_np, atol=1e-9)

    @pytest.mark.parametrize("d", [2, 3])
    def test_reconstruction(self, rng, d):
        a = rng.standard_normal((25, d, d))
        u, s, v = batched_svd(a)
        recon = (u * s[..., None, :]) @ np.swapaxes(v, -1, -2)
        assert np.allclose(recon, a, atol=1e-8)

    @pytest.mark.parametrize("d", [2, 3])
    def test_orthogonality(self, rng, d):
        a = rng.standard_normal((25, d, d))
        u, _, v = batched_svd(a)
        assert np.allclose(np.swapaxes(u, -1, -2) @ u, np.eye(d), atol=1e-8)
        assert np.allclose(np.swapaxes(v, -1, -2) @ v, np.eye(d), atol=1e-8)

    def test_rank_deficient(self):
        a = np.array([[[1.0, 0.0], [0.0, 0.0]]])
        u, s, v = batched_svd(a)
        assert s[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert s[0, 1] == pytest.approx(1.0)
        recon = (u * s[..., None, :]) @ np.swapaxes(v, -1, -2)
        assert np.allclose(recon, a, atol=1e-12)

    def test_descending_flag(self, rng):
        a = rng.standard_normal((10, 3, 3))
        _, s, _ = batched_svd(a, descending=True)
        assert np.all(np.diff(s, axis=-1) <= 1e-13)

    def test_min_singular_value_is_length_scale(self):
        """For a diagonal stretching map, sigma_min is the shortest axis
        — the dt length scale of the corner-force kernel."""
        jac = np.diag([0.5, 2.0, 1.0])[None]
        s = batched_singular_values(jac)
        assert s[0, 0] == pytest.approx(0.5)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            batched_singular_values(np.ones((4, 2, 3)))
