"""Tests for mesh refinement and curvilinear transformations."""

import numpy as np
import pytest

from repro.fem.curvilinear import (
    annulus_mesh_2d,
    sinusoid,
    stretch,
    twist_2d,
    validate_positive_jacobians,
)
from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.refinement import refine_uniform, refinement_levels_for_nodes
from repro.fem.spaces import H1Space


class TestRefinement:
    def test_counts_2d(self):
        m = refine_uniform(cartesian_mesh_2d(2, 3))
        assert m.nzones == 4 * 6
        assert m.nverts == (4 + 1) * (6 + 1)  # dedup worked

    def test_counts_3d(self):
        m = refine_uniform(cartesian_mesh_3d(2, 2, 2))
        assert m.nzones == 64
        assert m.nverts == 5**3

    def test_volume_preserved(self):
        base = cartesian_mesh_2d(3, 3)
        fine = refine_uniform(base, levels=2)
        sp = H1Space(fine, 1)
        quad = tensor_quadrature(2, 2)
        vols = GeometryEvaluator(sp, quad).zone_volumes(sp.node_coords)
        assert vols.sum() == pytest.approx(1.0, rel=1e-12)
        assert np.allclose(vols, 1.0 / fine.nzones)

    def test_eight_x_growth_is_paper_weak_scaling(self):
        """'one refinement level will make the domain size 8x bigger'."""
        base = cartesian_mesh_3d(2, 2, 2)
        fine = refine_uniform(base)
        assert fine.nzones == 8 * base.nzones

    def test_attributes_inherited(self):
        base = cartesian_mesh_2d(2, 1)
        base.zone_attributes[:] = [3, 7]
        fine = refine_uniform(base)
        assert sorted(set(fine.zone_attributes)) == [3, 7]
        assert (fine.zone_attributes == 3).sum() == 4

    def test_curved_parent_children_cover_it(self):
        """Refining a transformed mesh preserves total volume."""
        base = cartesian_mesh_2d(4, 4).transform(sinusoid(0.04))
        sp0 = H1Space(base, 1)
        quad = tensor_quadrature(2, 3)
        v0 = GeometryEvaluator(sp0, quad).zone_volumes(sp0.node_coords).sum()
        fine = refine_uniform(base)
        sp1 = H1Space(fine, 1)
        v1 = GeometryEvaluator(sp1, quad).zone_volumes(sp1.node_coords).sum()
        assert v1 == pytest.approx(v0, rel=1e-12)

    def test_zero_levels_identity(self):
        m = cartesian_mesh_2d(2, 2)
        assert refine_uniform(m, 0) is m

    def test_validation(self):
        with pytest.raises(ValueError):
            refine_uniform(cartesian_mesh_2d(1, 1), -1)

    def test_solver_runs_on_refined_mesh(self):
        from repro import LagrangianHydroSolver
        from repro.problems.base import Problem

        mesh = refine_uniform(cartesian_mesh_2d(2, 2))

        class Quiet(Problem):
            def e0(self, pts):
                return np.ones(pts.shape[0])

        solver = LagrangianHydroSolver(Quiet(mesh, 2))
        res = solver.run(t_final=0.01)
        assert res.reached_t_final
        assert abs(res.energy_change) < 1e-12


class TestLevelsForNodes:
    def test_paper_ladder(self):
        assert refinement_levels_for_nodes(8, 8) == 0
        assert refinement_levels_for_nodes(8, 64) == 1
        assert refinement_levels_for_nodes(8, 4096) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            refinement_levels_for_nodes(8, 100)
        with pytest.raises(ValueError):
            refinement_levels_for_nodes(8, 4)


class TestCurvilinear:
    def test_twist_preserves_volume(self):
        m = cartesian_mesh_2d(4, 4).transform(twist_2d(0.3))
        sp = H1Space(m, 3)
        quad = tensor_quadrature(2, 6)
        vols = GeometryEvaluator(sp, quad).zone_volumes(sp.node_coords)
        # A rotation field is volume preserving up to the polynomial
        # representation of the curved edges.
        assert vols.sum() == pytest.approx(1.0, rel=1e-3)
        assert validate_positive_jacobians(m, order=3)

    def test_sinusoid_valid_at_moderate_amplitude(self):
        m = cartesian_mesh_2d(4, 4).transform(sinusoid(0.05))
        assert validate_positive_jacobians(m, order=2)

    def test_sinusoid_3d(self):
        m = cartesian_mesh_3d(3, 3, 3).transform(sinusoid(0.03))
        assert validate_positive_jacobians(m, order=2)

    def test_extreme_sinusoid_tangles(self):
        m = cartesian_mesh_2d(4, 4).transform(sinusoid(0.6))
        assert not validate_positive_jacobians(m, order=2)

    def test_stretch(self):
        m = cartesian_mesh_2d(2, 2).transform(stretch([2.0, 3.0]))
        assert m.verts[:, 0].max() == pytest.approx(2.0)
        assert m.verts[:, 1].max() == pytest.approx(3.0)

    def test_stretch_validation(self):
        with pytest.raises(ValueError):
            stretch([1.0, -1.0])
        with pytest.raises(ValueError):
            stretch([1.0])(np.zeros((3, 2)))

    def test_annulus(self):
        m = annulus_mesh_2d(3, 6)
        assert m.nzones == 18
        assert validate_positive_jacobians(m, order=2)
        r = np.linalg.norm(m.verts, axis=1)
        assert r.min() == pytest.approx(0.5, rel=1e-12)
        assert r.max() == pytest.approx(1.0, rel=1e-12)

    def test_annulus_area_vertex_geometry(self):
        """Vertex-level polar mesh: area converges at the polygonal rate
        (sub-percent on this grid)."""
        m = annulus_mesh_2d(4, 8, r_inner=0.5, r_outer=1.0, angle=np.pi / 2)
        sp = H1Space(m, 4)
        quad = tensor_quadrature(2, 8)
        area = GeometryEvaluator(sp, quad).zone_volumes(sp.node_coords).sum()
        exact = (np.pi / 4) * (1.0 - 0.25)
        assert area == pytest.approx(exact, rel=1e-2)

    def test_annulus_area_isoparametric(self):
        """Curving the high-order nodes (apply_to_space) makes the same
        area integral accurate to near roundoff-of-quadrature levels."""
        from repro.fem.curvilinear import apply_to_space

        base = cartesian_mesh_2d(4, 8, extent=((0.5, 1.0), (0.0, np.pi / 2)))
        sp = H1Space(base, 4)
        apply_to_space(
            sp,
            lambda v: np.column_stack([v[:, 0] * np.cos(v[:, 1]), v[:, 0] * np.sin(v[:, 1])]),
        )
        quad = tensor_quadrature(2, 8)
        area = GeometryEvaluator(sp, quad).zone_volumes(sp.node_coords).sum()
        exact = (np.pi / 4) * (1.0 - 0.25)
        assert area == pytest.approx(exact, rel=1e-8)

    def test_apply_to_space_rejects_tangling(self):
        from repro.fem.curvilinear import apply_to_space

        sp = H1Space(cartesian_mesh_2d(2, 2), 2)
        with pytest.raises(ValueError):
            apply_to_space(sp, lambda v: 0.0 * v)

    def test_annulus_validation(self):
        with pytest.raises(ValueError):
            annulus_mesh_2d(0, 4)
        with pytest.raises(ValueError):
            annulus_mesh_2d(2, 2, r_inner=1.0, r_outer=0.5)
        with pytest.raises(ValueError):
            annulus_mesh_2d(2, 2, angle=0.0)

    def test_twist_requires_2d(self):
        with pytest.raises(ValueError):
            twist_2d()(np.zeros((4, 3)))

    def test_solver_on_curved_mesh(self):
        """The hydro solver runs on a genuinely curvilinear mesh."""
        from repro import LagrangianHydroSolver
        from repro.problems.base import Problem

        mesh = cartesian_mesh_2d(3, 3).transform(sinusoid(0.04))

        class Quiet(Problem):
            def e0(self, pts):
                return np.ones(pts.shape[0])

        solver = LagrangianHydroSolver(Quiet(mesh, 2))
        res = solver.run(t_final=0.02)
        assert res.reached_t_final
        assert abs(res.energy_change) / res.energy_history[0].total < 1e-12
