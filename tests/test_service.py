"""Tests for `repro.service`: the fault-tolerant simulation fleet.

The `-k smoke` subset (`PYTHONPATH=src python -m pytest -q
tests/test_service.py -k smoke`) is the fast end-to-end slice: submit /
wait, warm-pool bit-identity, cached results, and journal recovery.
The chaos test at the bottom is the acceptance scenario from the
issue: a mixed-priority burst under injected sticky-GPU / rank /
timeout faults, with exactly-once accounting checked against the
journal itself.
"""

import json

import numpy as np
import pytest

from repro.config import RunConfig
from repro.service import (
    AdmissionError,
    BreakerConfig,
    CircuitBreaker,
    FleetConfig,
    JobHandle,
    JobJournal,
    JobQueue,
    JobResult,
    JobSpec,
    JournalCorruptionError,
    QueueConfig,
    RetryPolicy,
    ResultStore,
    SimulationFleet,
    recover,
    state_digest,
)

TINY = RunConfig(zones=4, t_final=0.02)


def inline_fleet(**kwargs) -> SimulationFleet:
    """A workers=0 fleet: jobs run deterministically via `process()`."""
    kwargs.setdefault("config", FleetConfig(workers=0))
    return SimulationFleet(kwargs.pop("config"), start=False, **kwargs)


class TestJobSpec:
    def test_content_key_identifies_the_computation(self):
        a = JobSpec("sedov", TINY, job_id="a")
        b = JobSpec("sedov", TINY, priority=5, job_id="b")
        assert a.content_key() == b.content_key()  # identity ignores QoS
        c = JobSpec("sedov", TINY.replace(zones=5), job_id="c")
        assert a.content_key() != c.content_key()
        d = JobSpec("sod", TINY, job_id="d")
        assert a.content_key() != d.content_key()

    def test_round_trips_through_dict(self):
        spec = JobSpec("noh", TINY, priority=3, deadline_s=1.5,
                       max_attempts=2, job_id="j1")
        back = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.content_key() == spec.content_key()

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec("sedov", TINY, max_attempts=0)
        with pytest.raises(ValueError):
            JobSpec("sedov", TINY, deadline_s=0.0)
        with pytest.raises(TypeError):
            JobSpec("sedov", config={"zones": 4})


class TestQueue:
    def _submit(self, q, problem="sedov", **kw):
        spec = JobSpec(problem, TINY, job_id=kw.pop("job_id", f"j{len(q)}"),
                       **kw)
        handle = JobHandle(spec)
        return q.submit(spec, handle), handle

    def test_priority_order_fifo_within_priority(self):
        q = JobQueue(QueueConfig(max_depth=8))
        for jid, pri in (("lo1", 0), ("hi", 2), ("lo2", 0), ("mid", 1)):
            self._submit(q, job_id=jid, priority=pri)
        order = [q.get(0.0).spec.job_id for _ in range(4)]
        assert order == ["hi", "mid", "lo1", "lo2"]

    def test_full_queue_rejects_with_retry_hint(self):
        q = JobQueue(QueueConfig(max_depth=2, shed_lower_priority=False))
        self._submit(q, job_id="a")
        self._submit(q, job_id="b")
        with pytest.raises(AdmissionError) as err:
            self._submit(q, job_id="c")
        assert err.value.reason == "queue-full"
        assert err.value.retry_after_s > 0

    def test_higher_priority_displaces_lowest(self):
        q = JobQueue(QueueConfig(max_depth=2))
        self._submit(q, job_id="low", priority=0)
        self._submit(q, job_id="mid", priority=1)
        displaced, _ = self._submit(q, job_id="vip", priority=5)
        assert displaced.spec.job_id == "low"
        assert displaced.cancelled
        displaced2, _ = self._submit(q, job_id="vip2", priority=5)
        assert displaced2.spec.job_id == "mid"
        # Equal priority does NOT displace: strictly-higher only.
        with pytest.raises(AdmissionError):
            self._submit(q, job_id="vip3", priority=5)
        order = [q.get(0.0).spec.job_id for _ in range(2)]
        assert order == ["vip", "vip2"]

    def test_doomed_deadline_rejected_under_load(self):
        q = JobQueue(QueueConfig(max_depth=4, default_service_s=10.0))
        self._submit(q, job_id="a")
        self._submit(q, job_id="b")  # queue now half full
        with pytest.raises(AdmissionError) as err:
            self._submit(q, job_id="doomed", deadline_s=0.001)
        assert err.value.reason == "doomed-deadline"
        # force=True (journal recovery) bypasses admission control.
        spec = JobSpec("sedov", TINY, deadline_s=0.001, job_id="forced")
        q.submit(spec, JobHandle(spec), force=True)
        assert len(q) == 3

    def test_ewma_tracks_service_time(self):
        q = JobQueue(QueueConfig(default_service_s=1.0, ewma_alpha=0.5))
        q.observe_service(3.0)
        assert q.ewma_service_s == pytest.approx(2.0)

    def test_closed_queue_rejects_and_drains(self):
        q = JobQueue()
        self._submit(q, job_id="a")
        q.close()
        with pytest.raises(AdmissionError) as err:
            self._submit(q, job_id="b")
        assert err.value.reason == "closed"
        assert q.get(0.0).spec.job_id == "a"
        assert q.get(0.0) is None  # closed + drained


class TestBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        br = CircuitBreaker("hybrid", BreakerConfig(failure_threshold=3))
        for _ in range(2):
            br.record_failure()
        assert br.state == "closed"
        br.record_success()  # success resets the streak
        for _ in range(3):
            br.record_failure()
        assert br.state == "open"

    def test_cooldown_then_probe_then_close(self):
        br = CircuitBreaker(
            "hybrid", BreakerConfig(failure_threshold=1, cooldown_jobs=3)
        )
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()  # denial 1
        assert not br.allow()  # denial 2
        assert br.allow()      # denial 3 -> half-open, this is the probe
        assert br.state == "half-open"
        assert not br.allow()  # only one probe at a time
        br.record_success()
        assert br.state == "closed"

    def test_failed_probe_reopens(self):
        br = CircuitBreaker(
            "hybrid", BreakerConfig(failure_threshold=1, cooldown_jobs=1)
        )
        br.record_failure()
        assert br.allow()  # immediate half-open probe
        br.record_failure()
        assert br.state == "open"
        transitions = [(t.source, t.target) for t in br.transitions]
        assert transitions == [
            ("closed", "open"), ("open", "half-open"), ("half-open", "open"),
        ]


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        j = JobJournal(tmp_path / "j.jsonl")
        j.append("submit", job={"job_id": "a", "problem": "sedov",
                                "config": {}})
        j.append("complete", job_id="a", content_key="k")
        records = j.replay()
        assert [r["type"] for r in records] == ["submit", "complete"]
        assert [r["seq"] for r in records] == [0, 1]

    def test_seq_continues_across_restart(self, tmp_path):
        path = tmp_path / "j.jsonl"
        JobJournal(path).append("submit", job={"job_id": "a"})
        j2 = JobJournal(path)
        assert j2.append("complete", job_id="a") == 1

    def test_corrupt_line_lenient_vs_strict(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JobJournal(path)
        j.append("submit", job={"job_id": "a"})
        j.append("complete", job_id="a")
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"job_id": "a"', '"job_id": "X"')
        lines.append('{"torn')  # torn tail from a crash mid-append
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(UserWarning, match="corrupt"):
            records = JobJournal(path).replay()
        assert [r["type"] for r in records] == ["complete"]
        with pytest.raises(JournalCorruptionError):
            JobJournal(path, strict=True)

    def test_recover_classifies_jobs(self, tmp_path):
        j = JobJournal(tmp_path / "j.jsonl")
        done = JobSpec("sedov", TINY, job_id="done")
        interrupted = JobSpec("sod", TINY, job_id="interrupted")
        queued = JobSpec("noh", TINY, job_id="queued")
        shed = JobSpec("noh", TINY, job_id="shed")
        for spec in (done, interrupted, queued, shed):
            j.append("submit", job=spec.to_dict())
        j.append("start", job_id="done")
        j.append("complete", job_id="done", content_key="k1")
        j.append("start", job_id="interrupted")  # no terminal: crashed
        j.append("shed", job_id="shed", reason="queue full")
        state = recover(j)
        assert [s.job_id for s in state.pending] == ["interrupted", "queued"]
        assert state.completed == {"done": "k1"}
        assert state.interrupted == ["interrupted"]

    def test_duplicate_terminal_records_first_wins(self, tmp_path):
        j = JobJournal(tmp_path / "j.jsonl")
        j.append("submit", job=JobSpec("sedov", TINY, job_id="a").to_dict())
        j.append("complete", job_id="a", content_key="k1")
        j.append("fail", job_id="a", error="late duplicate")
        state = recover(j)
        assert state.pending == []
        assert state.completed == {"a": "k1"}


class TestResultStore:
    def _result(self, state):
        return JobResult(job_id="a", status="succeeded", problem="sedov",
                         content_key="k", steps=3,
                         state_sha256=state_digest(state))

    def _state(self):
        from repro.hydro.state import HydroState

        rng = np.random.default_rng(7)
        return HydroState(rng.random((5, 2)), rng.random(4),
                          rng.random((5, 2)), 0.25)

    def test_disk_round_trip_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        state = self._state()
        store.put("k", self._result(state), state)
        result, loaded = store.get("k")
        assert result.cached and result.steps == 3
        assert state_digest(loaded) == state_digest(state)
        assert np.array_equal(loaded.v, state.v)
        assert "k" in store and len(store) == 1
        assert store.get("missing") is None

    def test_corrupt_archive_is_a_miss_lenient_raises_strict(self, tmp_path):
        store = ResultStore(tmp_path)
        state = self._state()
        store.put("k", self._result(state), state)
        path = tmp_path / "result_k.npz"
        path.write_bytes(path.read_bytes()[:40])  # truncate
        with pytest.warns(UserWarning, match="corrupt"):
            assert store.get("k") is None
        with pytest.raises(JournalCorruptionError):
            ResultStore(tmp_path, strict=True).get("k")

    def test_memory_mode(self):
        store = ResultStore()
        state = self._state()
        store.put("k", self._result(state), state)
        result, loaded = store.get("k")
        assert result.cached
        assert np.array_equal(loaded.x, state.x)


class TestRetryPolicy:
    def test_jitter_is_deterministic_per_job_and_attempt(self):
        p = RetryPolicy(base_delay_s=0.01, jitter=0.5)
        assert p.delay_s("a", 0) == p.delay_s("a", 0)
        assert p.delay_s("a", 0) != p.delay_s("b", 0)
        assert p.delay_s("a", 1) != p.delay_s("a", 0)

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03,
                        jitter=0.0)
        assert p.delay_s("j", 0) == pytest.approx(0.01)
        assert p.delay_s("j", 1) == pytest.approx(0.02)
        assert p.delay_s("j", 4) == pytest.approx(0.03)  # capped

    def test_deadline_growth(self):
        p = RetryPolicy(deadline_growth=10.0)
        spec = JobSpec("sedov", TINY, deadline_s=0.1, job_id="j")
        assert p.attempt_deadline_s(spec, 0) == pytest.approx(0.1)
        assert p.attempt_deadline_s(spec, 2) == pytest.approx(10.0)
        assert p.attempt_deadline_s(JobSpec("sedov", TINY, job_id="n"), 1) is None


class TestFleetSmoke:
    def test_smoke_submit_wait_rollup(self):
        fleet = inline_fleet()
        handles = [fleet.submit("sedov", TINY.replace(zones=4 + i))
                   for i in range(3)]
        fleet.process()
        results = [h.wait(60) for h in handles]
        assert all(r.ok for r in results)
        assert all(r.state_sha256 for r in results)
        roll = fleet.rollup()
        assert roll["jobs"]["completed"] == 3
        assert roll["throughput_jobs_per_s"] > 0
        assert roll["latency_s"]["p99"] >= roll["latency_s"]["p50"] > 0
        fleet.shutdown(wait=False)

    def test_smoke_warm_pool_is_bit_identical(self):
        # reuse_results off forces the second job to actually execute,
        # on the warm solver the first job left in the pool.
        fleet = inline_fleet(config=FleetConfig(workers=0,
                                                reuse_results=False))
        h1 = fleet.submit("sedov", TINY)
        h2 = fleet.submit("sedov", TINY)
        fleet.process()
        r1, r2 = h1.result, h2.result
        assert not r1.warm and r2.warm
        assert r1.state_sha256 == r2.state_sha256
        assert fleet.rollup()["jobs"]["warm_hits"] == 1

    def test_smoke_warm_pool_arena_survives_mesh_size_changes(self):
        # One fleet arena backs every pooled solver. A solver evicted to
        # make room (different mesh shape) hands its workspace blocks
        # back, so rebuilding that shape later re-leases them instead of
        # allocating — and the recycled buffers change no bits.
        fleet = inline_fleet(config=FleetConfig(workers=0, warm_pool_size=1,
                                                reuse_results=False))
        h_a = fleet.submit("sedov", TINY)                    # pools solver A
        fleet.process()
        h_b1 = fleet.submit("sedov", TINY.replace(zones=5))  # B built, evicted
        fleet.process()
        allocs_after_b = fleet.rollup()["arena"]["block_allocations"]
        h_b2 = fleet.submit("sedov", TINY.replace(zones=5))  # B rebuilt
        h_a2 = fleet.submit("sedov", TINY)                   # A reused warm
        fleet.process()
        arena = fleet.rollup()["arena"]
        # B2's workspaces came entirely from B1's freed blocks.
        assert arena["block_allocations"] == allocs_after_b
        assert arena["block_reuses"] > 0
        assert arena["high_water_bytes"] > 0
        # Recycled blocks and solver.reset() reuse are both bit-identical.
        assert h_b2.result.state_sha256 == h_b1.result.state_sha256
        assert h_a2.result.warm
        assert h_a2.result.state_sha256 == h_a.result.state_sha256
        fleet.shutdown(wait=False)

    def test_smoke_repeat_submission_served_from_cache(self):
        fleet = inline_fleet()
        h1 = fleet.submit("sedov", TINY)
        fleet.process()
        h2 = fleet.submit("sedov", TINY)  # finished before process():
        assert h2.done                     # served from the store in O(1)
        assert h2.result.cached
        assert h2.result.state_sha256 == h1.result.state_sha256

    def test_smoke_journal_recovery_after_kill(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        f1 = inline_fleet(journal_path=journal)
        configs = [TINY.replace(max_steps=m) for m in (1, 2, 3, 4)]
        handles = [f1.submit("sedov", c) for c in configs]
        f1.process(2)
        f1.kill()  # crash double: 2 jobs done, 2 stranded in the journal
        survivors = {h.job_id: h.result.state_sha256
                     for h in handles if h.done}
        assert len(survivors) == 2

        f2 = inline_fleet(journal_path=journal)
        assert len(f2.recovered) == 2
        f2.process()
        assert all(h.result.ok for h in f2.recovered)
        # Resubmitting a pre-crash computation reuses its stored bits.
        f3 = inline_fleet(journal_path=journal)
        h = f3.submit("sedov", configs[0])
        assert h.done and h.result.cached
        assert h.result.state_sha256 == handles[0].result.state_sha256

    def test_smoke_recovery_resumes_elastic_rank_job(self, tmp_path):
        # A rank_schedule job stranded in the journal must replay after
        # recovery on the *resized* communicator, bit-for-bit: elastic
        # runs are deterministic, so the recovered digest has to match a
        # fresh run of the same config, whose manifest records the grow.
        journal = tmp_path / "journal.jsonl"
        elastic = TINY.replace(ranks=4, rank_schedule="2:8",
                               max_steps=6, t_final=1.0)
        f1 = inline_fleet(journal_path=journal)
        h = f1.submit("sedov", elastic)
        f1.kill()  # crash before a single process() tick: job stranded
        assert not h.done

        f2 = inline_fleet(journal_path=journal)
        assert len(f2.recovered) == 1
        f2.process()
        res = f2.recovered[0].result
        assert res.ok
        assert res.steps == 6

        from repro.api import run

        report = run("sedov", elastic)
        assert state_digest(report.state) == res.state_sha256
        assert report.manifest.solver["rank_history"] == [
            {"step": 2, "nranks": 8, "reason": "resize"}
        ]
        f2.shutdown(wait=False)

    def test_smoke_poll_and_handle_surface(self):
        fleet = inline_fleet()
        h = fleet.submit("sedov", TINY)
        assert h.poll() == "pending" and not h.done and h.result is None
        with pytest.raises(TimeoutError):
            h.wait(timeout=0.0)
        fleet.process()
        assert h.poll() == "succeeded" and h.done


class TestFleetBehavior:
    def test_unknown_problem_rejected_at_submit(self):
        fleet = inline_fleet()
        with pytest.raises(ValueError, match="unknown problem"):
            fleet.submit("kelvin-helmholtz", TINY)

    def test_duplicate_job_id_rejected(self):
        fleet = inline_fleet()
        fleet.submit("sedov", TINY, job_id="same")
        with pytest.raises(ValueError, match="duplicate"):
            fleet.submit("sod", TINY, job_id="same")

    def test_shed_jobs_terminate_their_handles(self):
        fleet = inline_fleet(config=FleetConfig(
            workers=0, queue=QueueConfig(max_depth=1)))
        low = fleet.submit("sedov", TINY, priority=0)
        vip = fleet.submit("sedov", TINY.replace(zones=5), priority=5)
        assert low.done and low.result.status == "shed"
        with pytest.raises(AdmissionError):
            fleet.submit("sedov", TINY.replace(zones=6), priority=5)
        fleet.process()
        assert vip.result.ok
        assert fleet.rollup()["jobs"]["shed"] == 2

    def test_cancel_queued_job(self):
        fleet = inline_fleet()
        h = fleet.submit("sedov", TINY)
        assert fleet.cancel(h)
        assert h.result.status == "cancelled"
        assert not fleet.cancel(h)  # already terminal
        assert fleet.process() == 0

    def test_deadline_timeout_retries_with_grown_budget(self):
        fleet = inline_fleet(config=FleetConfig(
            workers=0,
            retry=RetryPolicy(base_delay_s=1e-4, deadline_growth=1e4)))
        h = fleet.submit("sedov", TINY, deadline_s=1e-5, max_attempts=3)
        fleet.process()
        r = h.result
        assert r.ok and r.timeouts >= 1 and r.retries >= 1
        assert fleet.rollup()["jobs"]["timeouts"] >= 1

    def test_exhausted_attempts_fail_terminally(self):
        fleet = inline_fleet(config=FleetConfig(
            workers=0,
            retry=RetryPolicy(base_delay_s=1e-4, deadline_growth=1.0)))
        h = fleet.submit("sedov", TINY, deadline_s=1e-6, max_attempts=2)
        fleet.process()
        r = h.result
        assert r.status == "failed" and r.attempts == 2
        assert "deadline" in r.error

    def test_threaded_workers_drain_a_burst(self):
        fleet = SimulationFleet(FleetConfig(workers=2))
        handles = [fleet.submit("sedov", TINY.replace(max_steps=m))
                   for m in range(1, 7)]
        results = fleet.wait_all(timeout=120)
        assert len(results) == 6 and all(r.ok for r in results)
        fleet.shutdown()
        assert fleet.rollup()["jobs"]["completed"] == 6

    def test_resilient_jobs_take_the_cold_path(self):
        fleet = inline_fleet()
        h = fleet.submit(
            "sedov", TINY.replace(faults="state:6:blowup",
                                  checkpoint_every=3, max_steps=12))
        fleet.process()
        r = h.result
        assert r.ok and not r.warm

    def test_fleet_manifest_export(self, tmp_path):
        fleet = inline_fleet()
        fleet.submit("sedov", TINY)
        fleet.process()
        manifest = fleet.write_manifest(tmp_path / "fleet.json")
        data = json.loads((tmp_path / "fleet.json").read_text())
        assert data["jobs"]["completed"] == 1
        assert "p99" in data["latency_s"]
        assert "jobs/s" in manifest.summary() or "jobs" in manifest.summary()


class TestBreakerIntegration:
    HYBRID = RunConfig(zones=4, t_final=0.02, backend="hybrid", max_steps=20)

    def test_sticky_gpu_faults_open_then_probe_recloses(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        fleet = inline_fleet(config=FleetConfig(
            workers=0,
            breaker=BreakerConfig(failure_threshold=2, cooldown_jobs=2)),
            tracer=tracer)
        # Two sticky-GPU jobs: each degrades mid-run -> breaker opens.
        for seed in range(2):
            fleet.submit("sedov",
                         self.HYBRID.replace(faults="gpu:1!",
                                             fault_seed=seed))
        fleet.process()
        assert fleet.breakers.breaker("hybrid").state == "open"

        # While open, hybrid jobs degrade to cpu-fused *before* running.
        h = fleet.submit("sedov", self.HYBRID.replace(zones=5))
        fleet.process()
        assert h.result.ok and h.result.degraded
        assert h.result.backend == "cpu-fused"
        degrades = [e for e in fleet.events if e["event"] == "job_degraded"]
        assert degrades and degrades[0]["target"] == "cpu-fused"

        # Cooldown elapses -> half-open probe on real hybrid -> closed.
        probe = fleet.submit("sedov", self.HYBRID.replace(zones=6))
        fleet.process()
        assert probe.result.ok and probe.result.backend == "hybrid"
        assert fleet.breakers.breaker("hybrid").state == "closed"
        moves = [(t.source, t.target)
                 for t in fleet.breakers.breaker("hybrid").transitions]
        assert moves == [("closed", "open"), ("open", "half-open"),
                         ("half-open", "closed")]
        # Fleet lifecycle events are mirrored as tracer instants.
        names = {e["name"] for e in tracer.events}
        assert "breaker_transition" in names and "job_degraded" in names


class TestChaos:
    """The acceptance scenario: a mixed burst under injected faults."""

    def test_chaos_burst_exactly_once_with_breaker_cycle(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        fleet = SimulationFleet(
            FleetConfig(
                workers=0,
                queue=QueueConfig(max_depth=64),
                breaker=BreakerConfig(failure_threshold=2, cooldown_jobs=2),
                retry=RetryPolicy(base_delay_s=1e-4, deadline_growth=1e4),
            ),
            journal_path=journal,
            start=False,
        )
        handles = []
        # 2 sticky-GPU hybrid jobs (open the breaker), then a stream of
        # mixed-priority clean jobs, rank-fault jobs, and timeout jobs.
        for seed in range(2):
            handles.append(fleet.submit(
                "sedov", RunConfig(zones=4, t_final=0.02, backend="hybrid",
                                   faults="gpu:1!", fault_seed=seed,
                                   max_steps=20)))
        for i in range(12):
            handles.append(fleet.submit(
                "sedov", RunConfig(zones=4, t_final=0.02, max_steps=3 + i),
                priority=i % 3))
        for i in range(2):
            handles.append(fleet.submit(
                "sod", RunConfig(zones=4, t_final=0.02, ranks=2,
                                 faults="rank:2:1", checkpoint_every=4,
                                 max_steps=8 + i)))
        for i in range(2):
            handles.append(fleet.submit(
                "noh", RunConfig(zones=4, t_final=0.02, max_steps=4 + i),
                deadline_s=1e-5, max_attempts=3))
        # Hybrid jobs submitted while the breaker is open degrade; the
        # later ones probe and re-close it.
        for i in range(4):
            handles.append(fleet.submit(
                "sedov", RunConfig(zones=5 + i, t_final=0.02,
                                   backend="hybrid", max_steps=6)))
        assert len(handles) >= 20
        fleet.process()
        results = [h.wait(300) for h in handles]

        # Every non-shed job completed, and exactly once: one terminal
        # journal record per job id, checked against the journal itself.
        assert all(r.status in ("succeeded", "shed") for r in results)
        assert sum(r.ok for r in results) >= 20
        terminal: dict[str, int] = {}
        for record in JobJournal(journal).replay():
            if record["type"] in ("complete", "fail", "shed", "cancel"):
                terminal[record["job_id"]] = (
                    terminal.get(record["job_id"], 0) + 1
                )
        assert set(terminal) == {h.job_id for h in handles}
        assert all(n == 1 for n in terminal.values())

        # The breaker opened under the sticky faults, degraded hybrid
        # work to cpu-fused instantly, and re-closed after a probe.
        moves = [(t.source, t.target)
                 for t in fleet.breakers.breaker("hybrid").transitions]
        assert ("closed", "open") in moves
        assert ("half-open", "closed") in moves
        assert any(e["event"] == "job_degraded" for e in fleet.events)
        assert any(r.degraded and r.backend == "cpu-fused" for r in results)
        # Timeout jobs recovered through deadline growth, not luck.
        assert any(r.ok and r.timeouts > 0 for r in results)

    def test_chaos_kill_mid_burst_recovers_bit_identically(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        f1 = SimulationFleet(FleetConfig(workers=0), journal_path=journal,
                             start=False)
        configs = [RunConfig(zones=4, t_final=0.02, max_steps=m)
                   for m in range(1, 11)]
        handles = [f1.submit("sedov", c) for c in configs]
        f1.process(4)
        f1.kill()
        done_digests = {h.spec.content_key(): h.result.state_sha256
                        for h in handles if h.done}
        assert len(done_digests) == 4

        f2 = SimulationFleet(FleetConfig(workers=0), journal_path=journal,
                             start=False)
        assert len(f2.recovered) == 6
        f2.process()
        assert all(h.result.ok for h in f2.recovered)
        assert f2.rollup()["jobs"]["completed"] == 6

        # A third fleet sees every computation as already done and
        # serves each bit-identically from the store without running.
        f3 = SimulationFleet(FleetConfig(workers=0), journal_path=journal,
                             start=False)
        assert len(f3.recovered) == 0
        for cfg in configs:
            h = f3.submit("sedov", cfg)
            assert h.done and h.result.cached
            key = h.spec.content_key()
            if key in done_digests:
                assert h.result.state_sha256 == done_digests[key]
