"""Tests for boundary conditions and the momentum solver."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_kinematic_mass
from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space
from repro.hydro.boundary import BoundaryConditions
from repro.hydro.momentum import MomentumSolver


def mass_and_space(k=2, n=2):
    mesh = cartesian_mesh_2d(n, n)
    sp = H1Space(mesh, k)
    quad = tensor_quadrature(2, 2 * k)
    geo = GeometryEvaluator(sp, quad).evaluate(sp.node_coords)
    rho = np.ones((mesh.nzones, quad.nqp))
    return assemble_kinematic_mass(sp, quad, rho, geo), sp


class TestBoundaryConditions:
    def test_box_symmetry_counts(self):
        _, sp = mass_and_space(k=2, n=2)
        bc = BoundaryConditions.box_symmetry(sp)
        # 5x5 node grid: 2 faces x 5 nodes per direction, corners carry both.
        assert bc.n_constrained == 2 * (2 * 5)

    def test_none(self):
        _, sp = mass_and_space()
        bc = BoundaryConditions.none(sp)
        assert bc.n_constrained == 0

    def test_apply_to_field(self, rng):
        _, sp = mass_and_space()
        bc = BoundaryConditions.box_symmetry(sp)
        v = rng.standard_normal((sp.ndof, 2))
        bc.apply_to_field(v)
        assert np.allclose(v[bc.mask], 0.0)
        free = ~bc.mask
        assert not np.allclose(v[free], 0.0)

    def test_constrain_component_range(self):
        _, sp = mass_and_space()
        bc = BoundaryConditions.none(sp)
        with pytest.raises(ValueError):
            bc.constrain(np.array([0]), 5)

    def test_eliminated_operator_is_spd(self, rng):
        mass, sp = mass_and_space()
        bc = BoundaryConditions.box_symmetry(sp)
        op = bc.eliminated_operator(mass.matvec, 0)
        n = sp.ndof
        # Build the dense operator and verify symmetry + positive diag.
        dense = np.column_stack([op(col) for col in np.eye(n)])
        assert np.allclose(dense, dense.T, atol=1e-12)
        assert np.all(np.linalg.eigvalsh(dense) > 0)


class TestMomentumSolver:
    def test_unconstrained_matches_direct(self, rng):
        mass, sp = mass_and_space()
        bc = BoundaryConditions.none(sp)
        solver = MomentumSolver(mass, bc, tol=1e-14)
        rhs = rng.standard_normal((sp.ndof, 2))
        a = solver.solve(rhs)
        dense = mass.to_dense()
        expect = np.linalg.solve(dense, rhs)
        assert np.allclose(a, expect, atol=1e-9)
        assert solver.last_info.converged

    def test_constrained_components_zero(self, rng):
        mass, sp = mass_and_space()
        bc = BoundaryConditions.box_symmetry(sp)
        solver = MomentumSolver(mass, bc)
        a = solver.solve(rng.standard_normal((sp.ndof, 2)))
        assert np.allclose(a[bc.mask], 0.0)

    def test_constrained_solution_satisfies_free_equations(self, rng):
        mass, sp = mass_and_space()
        bc = BoundaryConditions.box_symmetry(sp)
        solver = MomentumSolver(mass, bc, tol=1e-14)
        rhs = rng.standard_normal((sp.ndof, 2))
        a = solver.solve(rhs)
        # On free dofs of component d: (M a)_i == rhs_i.
        for d in range(2):
            free = ~bc.component_mask(d)
            resid = mass.matvec(a[:, d]) - rhs[:, d]
            assert np.allclose(resid[free], 0.0, atol=1e-9)

    def test_solve_info_populated(self, rng):
        mass, sp = mass_and_space()
        solver = MomentumSolver(mass, BoundaryConditions.none(sp))
        solver.solve(rng.standard_normal((sp.ndof, 2)))
        info = solver.last_info
        assert info.iterations > 0
        assert info.flops > 0
        assert info.spmv_count >= info.iterations

    def test_shape_validation(self, rng):
        mass, sp = mass_and_space()
        solver = MomentumSolver(mass, BoundaryConditions.none(sp))
        with pytest.raises(ValueError):
            solver.solve(rng.standard_normal(sp.ndof))

    def test_bc_size_mismatch(self):
        mass, sp = mass_and_space()
        with pytest.raises(ValueError):
            MomentumSolver(mass, BoundaryConditions(sp.ndof + 1, 2))
