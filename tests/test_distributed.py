"""Tests for the distributed execution backend (paper Section 3.4).

The MPI layer's correctness contract: rank-local corner forces + group
assembly + global reductions reproduce the serial solver up to
floating-point summation reordering — for *every* node backend the
distributed layer wraps, at every rank count, with or without
communication/computation overlap (which must be a pure pricing knob).

The `test_smoke_*` subset (`pytest -k smoke`) is the fast
composition-matrix check referenced from ROADMAP.md.
"""

import warnings

import numpy as np
import pytest

from repro import (
    LagrangianHydroSolver,
    SedovProblem,
    SodProblem,
    TriplePointProblem,
)
from repro.api import RunConfig, run
from repro.backends import DistributedBackend
from repro.backends.distributed import DistributedMomentumSolver
from repro.runtime.distributed import DistributedLagrangianSolver
from repro.runtime.mpi_sim import CommCostModel, SimulatedComm


def make_solver(nranks=4, backend=None, zones=4, **cfg_kw):
    """A `LagrangianHydroSolver` carrying the distributed backend."""
    problem = SedovProblem(dim=2, order=2, zones_per_dim=zones)
    cfg = RunConfig(ranks=nranks, backend=backend, **cfg_kw)
    return LagrangianHydroSolver(problem, cfg)


class TestCompositionMatrix:
    """`ranks` composes with every node backend (the tentpole)."""

    @pytest.mark.parametrize(
        "backend", ["cpu-serial", "cpu-fused", "cpu-parallel", "hybrid"]
    )
    def test_smoke_every_node_backend_matches_serial(self, backend):
        cfg = dict(zones=5, max_steps=8)
        ref = run("sod", RunConfig(**cfg))
        dist = run("sod", RunConfig(ranks=2, backend=backend, **cfg))
        assert dist.steps == ref.steps
        assert np.allclose(dist.state.v, ref.state.v, atol=1e-9)
        assert np.allclose(dist.state.e, ref.state.e, atol=1e-9)
        assert dist.mpi_traffic is not None and dist.mpi_traffic.messages > 0

    @pytest.mark.parametrize("nranks", [1, 2, 4, 5])
    def test_rank_count_invariance(self, nranks):
        t_final = 0.08
        serial = LagrangianHydroSolver(SedovProblem(dim=2, order=2, zones_per_dim=4))
        res_s = serial.run(t_final=t_final)
        res_d = run(
            "sedov",
            RunConfig(zones=4, ranks=nranks, t_final=t_final),
        ).result
        assert res_s.steps == res_d.steps
        assert np.allclose(res_s.state.v, res_d.state.v, atol=1e-9)
        assert np.allclose(res_s.state.e, res_d.state.e, atol=1e-9)
        assert np.allclose(res_s.state.x, res_d.state.x, atol=1e-9)

    def test_multimaterial_per_zone_gamma(self):
        """Per-zone-material EOS slices correctly across ranks."""
        t_final = 0.05
        serial = LagrangianHydroSolver(TriplePointProblem(order=2, nx=7, ny=3))
        res_s = serial.run(t_final=t_final)
        dist = LagrangianHydroSolver(
            TriplePointProblem(order=2, nx=7, ny=3), RunConfig(ranks=3)
        )
        res_d = dist.run(t_final=t_final)
        assert np.allclose(res_s.state.e, res_d.state.e, atol=1e-9)

    def test_energy_conserved_distributed(self):
        res = run("sedov", RunConfig(zones=4, ranks=4, t_final=0.1)).result
        rel = abs(res.energy_change) / res.energy_history[0].total
        assert rel < 1e-11

    def test_3d_one_step(self):
        serial = LagrangianHydroSolver(SedovProblem(dim=3, order=1, zones_per_dim=2))
        res_s = serial.run(t_final=0.02)
        dist = LagrangianHydroSolver(
            SedovProblem(dim=3, order=1, zones_per_dim=2), RunConfig(ranks=2)
        )
        res_d = dist.run(t_final=0.02)
        assert np.allclose(res_s.state.v, res_d.state.v, atol=1e-10)

    def test_smoke_workers_compose_with_ranks(self):
        """The old workers-xor-ranks restriction is gone."""
        cfg = RunConfig(workers=2, ranks=2, zones=4, max_steps=3)
        assert cfg.resolved_backend == "cpu-parallel"
        report = run("sod", cfg)
        assert report.steps == 3

    def test_smoke_hybrid_fleet_schedules(self):
        """ranks x hybrid runs the in-band scheduler over the fleet."""
        report = run("sod", RunConfig(zones=5, ranks=2, backend="hybrid",
                                      max_steps=12, tune_period_steps=3))
        assert report.scheduler is not None
        solver = report.solver
        assert solver.backend.name == "distributed"
        ratios = {r.node.ratio for r in solver.backend.ranks}
        assert len(ratios) == 1  # decisions broadcast to the whole fleet


class TestOverlap:
    """overlap=on|off moves modeled pricing only, never physics."""

    def test_smoke_overlap_is_bitwise_pure_pricing(self):
        cfg = dict(zones=5, ranks=2, max_steps=8)
        on = run("sod", RunConfig(overlap=True, **cfg))
        off = run("sod", RunConfig(overlap=False, **cfg))
        assert np.array_equal(on.state.v, off.state.v)
        assert np.array_equal(on.state.e, off.state.e)
        assert np.array_equal(on.state.x, off.state.x)
        assert on.mpi_traffic.bytes == off.mpi_traffic.bytes
        assert on.mpi_traffic.messages == off.mpi_traffic.messages

    def test_overlap_hides_exchange_under_interior_work(self):
        """With a slow network, overlap=on strictly reduces exposed time."""
        ledgers = {}
        for overlap in (True, False):
            backend = DistributedBackend(
                2, overlap=overlap,
                cost_model=CommCostModel(alpha_s=5e-3, beta_s_per_byte=1e-6),
            )
            solver = LagrangianHydroSolver(
                SodProblem(order=2, nx=20, ny=1),
                RunConfig(max_steps=4),
                backend=backend,
            )
            solver.run(max_steps=4)
            ledgers[overlap] = backend.comm.ledger
            solver.close()
        assert ledgers[True].total_s == pytest.approx(ledgers[False].total_s)
        assert ledgers[True].hidden_s > ledgers[False].hidden_s
        assert ledgers[True].exposed_s < ledgers[False].exposed_s


class TestCommTelemetry:
    def test_smoke_comm_span_bytes_equal_traffic(self):
        report = run("sod", RunConfig(zones=4, ranks=2, max_steps=4,
                                      telemetry=True))
        comm_spans = [s for s in report.tracer.spans if s.category == "comm"]
        assert comm_spans, "distributed run emitted no comm spans"
        assert sum(s.meta["bytes"] for s in comm_spans) == report.mpi_traffic.bytes
        for s in comm_spans:
            assert s.meta["ranks"] == 2
            assert s.parent >= 0  # nested under a phase/step span, not a root

    def test_per_rank_traffic_sums_to_total(self):
        report = run("sod", RunConfig(zones=4, ranks=3, max_steps=4))
        per_rank = report.mpi_traffic.per_rank_dict()
        assert sum(t["bytes"] for t in per_rank.values()) == report.mpi_traffic.bytes
        assert sum(t["messages"] for t in per_rank.values()) == report.mpi_traffic.messages
        assert report.manifest.solver["mpi_traffic"]["per_rank"] == per_rank


class TestCollectiveValidation:
    """Collectives fail fast, naming the offending rank."""

    def test_shape_mismatch_names_rank(self):
        comm = SimulatedComm(3)
        with pytest.raises(ValueError, match=r"allreduce_sum: rank 2 .*shape"):
            comm.allreduce_sum([np.zeros(4), np.zeros(4), np.zeros(5)])

    def test_bad_dtype_names_rank(self):
        comm = SimulatedComm(2)
        with pytest.raises(TypeError, match="allreduce_sum: rank 1"):
            comm.allreduce_sum([np.zeros(2), np.array(["a", "b"])])
        with pytest.raises(TypeError, match="rank 0"):
            comm.allreduce_sum([np.zeros(2, dtype=complex), np.zeros(2)])

    def test_scalar_collective_validation(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError, match="allreduce_min: rank 1"):
            comm.allreduce_min([1.0, np.zeros(3)])
        with pytest.raises(TypeError, match="allreduce_min: rank 0"):
            comm.allreduce_min([None, 1.0])

    def test_contribution_count_checked(self):
        comm = SimulatedComm(3)
        with pytest.raises(ValueError, match="per rank"):
            comm.allreduce_sum([np.zeros(2), np.zeros(2)])

    def test_double_wait_rejected(self):
        comm = SimulatedComm(2)
        req = comm.iallreduce_min([1.0, 2.0])
        assert comm.wait(req) == 1.0
        with pytest.raises(RuntimeError, match="already completed"):
            comm.wait(req)


class TestDistributedMechanics:
    def test_rank_masses_sum_to_global(self):
        solver = make_solver(rank_step="loop")
        total = sum(r.mass_local.to_dense() for r in solver.backend.ranks)
        assert np.allclose(total, solver.mass_v.to_dense(), atol=1e-13)

    def test_distributed_matvec_matches(self, rng):
        solver = make_solver(rank_step="loop")
        assert isinstance(solver.momentum, DistributedMomentumSolver)
        assert solver.integrator.momentum is solver.momentum
        x = rng.standard_normal(solver.kinematic.ndof)
        assert np.allclose(
            solver.momentum.matvec(x), solver.mass_v.matvec(x), atol=1e-12
        )

    def test_every_zone_owned_once(self):
        solver = make_solver(nranks=3)
        owned = np.concatenate([r.zones for r in solver.backend.ranks])
        assert np.array_equal(np.sort(owned), np.arange(16))
        for r in solver.backend.ranks:
            split = np.sort(np.concatenate([r.interface_zones, r.interior_zones]))
            assert np.array_equal(split, np.sort(r.zones))

    def test_force_eval_posts_two_reductions(self):
        solver = make_solver()
        before = solver.backend.comm.traffic.reductions
        solver.integrator.force_fn(solver.state)
        # One interface-dof sum + one min-dt reduction per evaluation.
        assert solver.backend.comm.traffic.reductions == before + 2

    def test_traffic_accumulates_over_run(self):
        solver = make_solver(nranks=2)
        solver.run(t_final=0.02, max_steps=3)
        assert solver.backend.comm.traffic.messages > 0
        assert solver.backend.comm.traffic.bytes > 0

    def test_custom_partition(self):
        p = SedovProblem(dim=2, order=2, zones_per_dim=4)
        zone_rank = np.zeros(16, dtype=int)
        zone_rank[8:] = 1
        backend = DistributedBackend(2, zone_rank=zone_rank)
        solver = LagrangianHydroSolver(p, backend=backend)
        assert backend.ranks[0].zones.size == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedBackend(0)
        with pytest.raises(ValueError):
            LagrangianHydroSolver(
                SedovProblem(dim=2, zones_per_dim=2),
                backend=DistributedBackend(2, zone_rank=np.zeros(3, dtype=int)),
            )

    def test_compute_local_matches_global(self):
        """Slicing zones out of the global computation is exact."""
        solver = make_solver(nranks=2)
        full = solver.engine.compute(solver.state)
        for rank in solver.backend.ranks:
            local = rank.node.compute_local(solver.state, rank.zones)
            assert np.allclose(local.Fz, full.Fz[rank.zones], atol=1e-14)

    def test_compute_local_empty_subset(self):
        solver = make_solver(nranks=2)
        res = solver.engine.compute_local(solver.state, np.array([], dtype=int))
        assert res.Fz.shape[0] == 0
        assert res.valid

    def test_exclude_rank_continues_physics(self):
        solver = make_solver(nranks=3, zones=4)
        solver.run(t_final=0.01, max_steps=2)
        reductions_before = solver.backend.comm.traffic.reductions
        solver.backend.exclude_rank(1)
        assert solver.backend.nranks == 2
        assert solver.backend.comm.traffic.reductions == reductions_before
        res = solver.run(t_final=0.03, max_steps=3)
        assert res.steps > 0
        owned = np.concatenate([r.zones for r in solver.backend.ranks])
        assert np.array_equal(np.sort(owned), np.arange(16))


class TestVectorizedRankStep:
    """Stacked rank stepping: same physics, same priced traffic as loop."""

    def test_smoke_vectorized_matches_loop_with_identical_traffic(self):
        cfg = dict(zones=5, max_steps=6)
        loop = run("sedov", RunConfig(ranks=4, rank_step="loop", **cfg))
        vec = run("sedov", RunConfig(ranks=4, rank_step="vectorized", **cfg))
        assert vec.steps == loop.steps
        assert np.allclose(vec.state.v, loop.state.v, atol=1e-12)
        assert np.allclose(vec.state.e, loop.state.e, atol=1e-12)
        assert np.allclose(vec.state.x, loop.state.x, atol=1e-12)
        # Pricing parity is exact: same collectives, same payloads, same
        # per-rank attribution.
        assert vec.mpi_traffic.messages == loop.mpi_traffic.messages
        assert vec.mpi_traffic.bytes == loop.mpi_traffic.bytes
        assert vec.mpi_traffic.reductions == loop.mpi_traffic.reductions
        assert vec.mpi_traffic.per_rank_dict() == loop.mpi_traffic.per_rank_dict()

    def test_vectorized_force_phase_bitwise_vs_loop(self):
        loop = make_solver(rank_step="loop")
        vec = make_solver(rank_step="vectorized")
        rl = loop.integrator.force_fn(loop.state)
        rv = vec.integrator.force_fn(vec.state)
        # Same zones, same per-rank accumulation order in the interface
        # scatter; what remains is pure batching-layout FP reordering
        # (loop evaluates per-rank slices, vectorized evaluates the
        # iface/interior concats) — the same budget `compute_local`
        # itself is held to against the global evaluation.
        np.testing.assert_allclose(rv.Fz, rl.Fz, rtol=1e-13, atol=1e-14)
        np.testing.assert_allclose(rv.rhs_mom, rl.rhs_mom, rtol=1e-13, atol=1e-14)
        assert rv.dt_est == pytest.approx(rl.dt_est, rel=1e-13)

    def test_auto_resolves_vectorized_except_hybrid(self):
        vec = make_solver(nranks=2)
        assert vec.backend.describe()["rank_step"] == "vectorized"
        hyb = make_solver(nranks=2, backend="hybrid")
        # Hybrid nodes carry per-rank split state -> stays on loop mode.
        assert hyb.backend.describe()["rank_step"] == "loop"

    def test_per_rank_attribution_sums_at_high_rank_count(self):
        report = run("sedov", RunConfig(zones=8, ranks=64, max_steps=2,
                                        pcg_maxiter=8))
        traffic = report.mpi_traffic
        per_rank = traffic.per_rank_dict()
        assert set(per_rank) <= set(range(64))
        assert sum(t["bytes"] for t in per_rank.values()) == traffic.bytes
        assert sum(t["messages"] for t in per_rank.values()) == traffic.messages


class TestStackedCollectives:
    def test_stacked_sum_functional(self, rng):
        comm = SimulatedComm(3)
        stacked = rng.standard_normal((3, 5, 2))
        res = comm.wait(comm.iallreduce_sum_stacked(stacked))
        np.testing.assert_array_equal(res, np.sum(stacked, axis=0))

    def test_stacked_pricing_matches_per_rank_rows(self):
        comm = SimulatedComm(4)
        stacked = np.ones((4, 6))
        comm.wait(comm.iallreduce_sum_stacked(stacked))
        t = comm.traffic
        # One 48-byte allreduce over 4 ranks: tree up+down.
        assert t.reductions == 1
        assert t.messages == 2 * 3
        assert t.bytes == 2 * 48 * 3

    def test_stacked_validation(self):
        comm = SimulatedComm(3)
        with pytest.raises(ValueError, match="leading axis"):
            comm.iallreduce_sum_stacked(np.zeros((2, 4)))
        with pytest.raises(TypeError):
            comm.iallreduce_sum_stacked(
                np.array([["a"] * 2] * 3, dtype=object)
            )

    def test_min_batch_scalar_and_batched(self):
        comm = SimulatedComm(3)
        assert comm.wait(comm.iallreduce_min_batch(np.array([3.0, 1.0, 2.0]))) == 1.0
        assert comm.traffic.reductions == 1
        res = comm.wait(
            comm.iallreduce_min_batch(np.array([[3.0, 5.0], [1.0, 7.0], [2.0, 6.0]]))
        )
        np.testing.assert_array_equal(res, [1.0, 5.0])
        assert comm.traffic.reductions == 3  # k=2 reductions in the batch


class TestElasticRanks:
    """Mid-run grow/shrink: physics invariant, transitions journaled."""

    def test_smoke_grow_matches_fixed_rank_physics(self):
        cfg = dict(zones=4, max_steps=8, t_final=1.0)  # step budget binds
        fixed = run("sedov", RunConfig(ranks=4, **cfg))
        grown = run("sedov", RunConfig(ranks=4, rank_schedule="3:8", **cfg))
        assert grown.steps == fixed.steps
        assert np.abs(grown.state.v - fixed.state.v).max() < 1e-10
        assert np.abs(grown.state.e - fixed.state.e).max() < 1e-10
        assert grown.solver.backend.nranks == 8
        assert grown.solver.backend.rank_history == [
            {"step": 3, "nranks": 8, "reason": "resize"}
        ]
        assert grown.manifest.solver["rank_history"] == grown.solver.backend.rank_history

    def test_smoke_shrink_matches_fixed_rank_physics(self):
        cfg = dict(zones=4, max_steps=8, t_final=1.0)
        fixed = run("sedov", RunConfig(ranks=8, **cfg))
        shrunk = run("sedov", RunConfig(ranks=8, rank_schedule="4:3", **cfg))
        assert shrunk.steps == fixed.steps
        assert np.abs(shrunk.state.v - fixed.state.v).max() < 1e-10
        assert np.abs(shrunk.state.e - fixed.state.e).max() < 1e-10
        assert shrunk.solver.backend.nranks == 3

    def test_elastic_run_is_bit_reproducible(self):
        cfg = RunConfig(ranks=4, rank_schedule="2:8,5:3", zones=4,
                        max_steps=7, t_final=1.0)
        a = run("sedov", cfg)
        b = run("sedov", cfg)
        assert np.array_equal(a.state.v, b.state.v)
        assert np.array_equal(a.state.e, b.state.e)
        assert np.array_equal(a.state.x, b.state.x)
        assert a.solver.backend.rank_history == b.solver.backend.rank_history

    def test_resize_emits_trace_instants(self):
        report = run("sedov", RunConfig(ranks=4, rank_schedule="2:8,5:3",
                                        zones=4, max_steps=7, t_final=1.0,
                                        telemetry=True))
        resizes = [e for e in report.tracer.events if e["name"] == "rank_resize"]
        assert [(e["step"], e["nranks"], e["from"]) for e in resizes] == [
            (2, 8, 4), (5, 3, 8)
        ]
        assert all(e["category"] == "comm" for e in resizes)

    def test_exclusion_during_grown_fleet(self):
        solver = make_solver(nranks=4, zones=4)
        solver.run(t_final=0.01, max_steps=2)
        solver.backend.resize_ranks(8)
        solver.backend.exclude_rank(3)
        assert solver.backend.nranks == 7
        res = solver.run(t_final=0.05, max_steps=3)
        assert res.steps > 0
        assert np.isfinite(solver.state.v).all()
        history = [(h["nranks"], h["reason"]) for h in solver.backend.rank_history]
        assert history == [(8, "resize"), (7, "exclude")]

    def test_reset_restores_initial_fleet(self):
        solver = make_solver(nranks=4, zones=4, rank_schedule="2:8")
        solver.run(t_final=0.05, max_steps=4)
        assert solver.backend.nranks == 8
        solver.reset()
        assert solver.backend.nranks == 4
        assert solver.backend.rank_history == []
        res = solver.run(t_final=0.05, max_steps=4)
        assert solver.backend.nranks == 8  # schedule re-fires after reset
        assert res.steps > 0

    def test_schedule_validation(self):
        with pytest.raises(ValueError, match="rank_schedule requires ranks"):
            RunConfig(rank_schedule="3:8")
        for bad in ("0:4", "3:0", "3:8,3:5", "nonsense"):
            with pytest.raises(ValueError):
                DistributedBackend(4, rank_schedule=bad)

    def test_resize_validation(self):
        solver = make_solver(nranks=4, zones=4)
        with pytest.raises(ValueError):
            solver.backend.resize_ranks(0)


class TestDeprecatedShim:
    def test_shim_warns_and_shares_one_solver(self):
        with pytest.warns(DeprecationWarning, match="DistributedLagrangianSolver"):
            dist = DistributedLagrangianSolver(
                SedovProblem(dim=2, order=2, zones_per_dim=4), nranks=2
            )
        # Satellite fix: no private second solver — assembly runs once.
        assert dist.serial is dist.solver
        assert dist.nranks == 2
        assert dist.comm is dist.backend.comm

    def test_shim_run_matches_composed_path(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            dist = DistributedLagrangianSolver(
                SedovProblem(dim=2, order=2, zones_per_dim=4), nranks=2
            )
        res_shim = dist.run(t_final=0.05)
        res_new = run("sedov", RunConfig(zones=4, ranks=2, t_final=0.05)).result
        assert res_shim.steps == res_new.steps
        assert np.array_equal(res_shim.state.v, res_new.state.v)
