"""Tests for the functional distributed solver (paper Section 3.4).

The MPI layer's correctness contract: rank-local corner forces + group
assembly + global reductions reproduce the serial solver up to
floating-point summation reordering.
"""

import numpy as np
import pytest

from repro import (
    LagrangianHydroSolver,
    SedovProblem,
    SolverOptions,
    TriplePointProblem,
)
from repro.runtime.distributed import DistributedLagrangianSolver


def run_pair(problem_factory, nranks, t_final, **kw):
    serial = LagrangianHydroSolver(problem_factory(), **kw)
    res_s = serial.run(t_final=t_final)
    dist = DistributedLagrangianSolver(problem_factory(), nranks=nranks, **kw)
    res_d = dist.run(t_final=t_final)
    return serial, res_s, dist, res_d


class TestDistributedMatchesSerial:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 5])
    def test_sedov_agreement(self, nranks):
        _, res_s, dist, res_d = run_pair(
            lambda: SedovProblem(dim=2, order=2, zones_per_dim=4), nranks, 0.08
        )
        assert res_s.steps == res_d.steps
        assert np.allclose(res_s.state.v, res_d.state.v, atol=1e-9)
        assert np.allclose(res_s.state.e, res_d.state.e, atol=1e-9)
        assert np.allclose(res_s.state.x, res_d.state.x, atol=1e-9)

    def test_multimaterial_per_zone_gamma(self):
        """Per-zone-material EOS slices correctly across ranks."""
        _, res_s, _, res_d = run_pair(
            lambda: TriplePointProblem(order=2, nx=7, ny=3), 3, 0.05
        )
        assert np.allclose(res_s.state.e, res_d.state.e, atol=1e-9)

    def test_energy_conserved_distributed(self):
        _, _, dist, res_d = run_pair(
            lambda: SedovProblem(dim=2, order=2, zones_per_dim=4), 4, 0.1
        )
        rel = abs(res_d.energy_change) / res_d.energy_history[0].total
        assert rel < 1e-11

    def test_3d_one_step(self):
        _, res_s, _, res_d = run_pair(
            lambda: SedovProblem(dim=3, order=1, zones_per_dim=2), 2, 0.02
        )
        assert np.allclose(res_s.state.v, res_d.state.v, atol=1e-10)


class TestDistributedMechanics:
    def make(self, nranks=4):
        return DistributedLagrangianSolver(
            SedovProblem(dim=2, order=2, zones_per_dim=4), nranks=nranks
        )

    def test_rank_masses_sum_to_global(self):
        dist = self.make()
        total = sum(r.mass_local.to_dense() for r in dist.ranks)
        assert np.allclose(total, dist.serial.mass_v.to_dense(), atol=1e-13)

    def test_distributed_matvec_matches(self, rng):
        dist = self.make()
        x = rng.standard_normal(dist.serial.kinematic.ndof)
        assert np.allclose(
            dist._mass_matvec(x), dist.serial.mass_v.matvec(x), atol=1e-12
        )

    def test_every_zone_owned_once(self):
        dist = self.make(nranks=3)
        owned = np.concatenate([r.zones for r in dist.ranks])
        assert np.array_equal(np.sort(owned), np.arange(16))

    def test_min_dt_reduction_used(self):
        dist = self.make()
        before = dist.comm.traffic.reductions
        dist._corner_forces(dist.state)
        assert dist.comm.traffic.reductions == before + 1

    def test_traffic_accumulates_over_run(self):
        dist = self.make(nranks=2)
        dist.run(t_final=0.02, max_steps=3)
        assert dist.comm.traffic.messages > 0
        assert dist.comm.traffic.bytes > 0

    def test_custom_partition(self):
        p = SedovProblem(dim=2, order=2, zones_per_dim=4)
        zone_rank = np.zeros(16, dtype=int)
        zone_rank[8:] = 1
        dist = DistributedLagrangianSolver(p, nranks=2, zone_rank=zone_rank)
        assert dist.ranks[0].zones.size == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedLagrangianSolver(
                SedovProblem(dim=2, zones_per_dim=2), nranks=0
            )
        with pytest.raises(ValueError):
            DistributedLagrangianSolver(
                SedovProblem(dim=2, zones_per_dim=2),
                nranks=2,
                zone_rank=np.zeros(3, dtype=int),
            )

    def test_compute_local_matches_global(self, rng):
        """Slicing zones out of the global computation is exact."""
        dist = self.make(nranks=2)
        serial = dist.serial
        state = serial.state
        full = serial.engine.compute(state)
        for rank in dist.ranks:
            local = serial.engine.compute_local(state, rank.zones)
            assert np.allclose(local.Fz, full.Fz[rank.zones], atol=1e-14)

    def test_compute_local_empty_subset(self):
        dist = self.make(nranks=2)
        res = dist.serial.engine.compute_local(dist.state, np.array([], dtype=int))
        assert res.Fz.shape[0] == 0
        assert res.valid
