"""Tests for the convergence-study tool (p-refinement pays off)."""

import pytest

from repro import TaylorGreenProblem
from repro.analysis.convergence import (
    ConvergencePoint,
    convergence_study,
    observed_rate,
)


@pytest.mark.slow
class TestPRefinement:
    def test_higher_order_smaller_error(self):
        """On the smooth Taylor-Green flow, Q3 beats Q2 beats Q1 at a
        fixed zone count — the paper's p-refinement argument."""
        configs = [
            (f"Q{k}-Q{k - 1}", lambda k=k: TaylorGreenProblem(order=k, zones_per_dim=3))
            for k in (1, 2, 3, 5)
        ]
        pts = convergence_study(configs, t_final=0.04)
        errs = [p.error for p in pts[:-1]]
        assert errs[0] > errs[1] > errs[2] > 0
        assert pts[-1].error == 0.0

    def test_observed_rate_negative(self):
        configs = [
            (f"Q{k}", lambda k=k: TaylorGreenProblem(order=k, zones_per_dim=3))
            for k in (1, 2, 3, 5)
        ]
        pts = convergence_study(configs, t_final=0.04)
        assert observed_rate(pts) < -1.0


class TestMechanics:
    def test_requires_two_configs(self):
        with pytest.raises(ValueError):
            convergence_study(
                [("only", lambda: TaylorGreenProblem(order=1, zones_per_dim=2))],
                t_final=0.01,
            )

    def test_rate_requires_points(self):
        pts = [
            ConvergencePoint("a", 10, 1.0, 0.0),
            ConvergencePoint("ref", 100, 1.0, 0.0),
        ]
        with pytest.raises(ValueError):
            observed_rate(pts)

    def test_custom_metric(self):
        configs = [
            ("coarse", lambda: TaylorGreenProblem(order=1, zones_per_dim=2)),
            ("fine", lambda: TaylorGreenProblem(order=2, zones_per_dim=2)),
        ]
        pts = convergence_study(
            configs, t_final=0.01, metric=lambda s, r: float(r.steps)
        )
        assert all(p.value >= 1 for p in pts)
