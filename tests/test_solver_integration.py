"""Integration tests: full solver runs on the paper's benchmark problems.

These are the Python analogs of the paper's validation (Section 4.1,
Table 6): total energy must be conserved to machine precision, the
physics must be sane (shock position, positivity), and boundary
conditions must hold throughout.
"""

import numpy as np
import pytest

from repro import (
    LagrangianHydroSolver,
    SedovProblem,
    SolverOptions,
    TaylorGreenProblem,
    TriplePointProblem,
)


@pytest.fixture(scope="module")
def sedov_2d_run():
    p = SedovProblem(dim=2, order=2, zones_per_dim=4)
    s = LagrangianHydroSolver(p)
    return p, s, s.run(t_final=0.05)


class TestSedov2D:
    def test_reaches_final_time(self, sedov_2d_run):
        _, _, res = sedov_2d_run
        assert res.reached_t_final
        assert res.state.t == pytest.approx(0.05)

    def test_energy_conservation_machine_precision(self, sedov_2d_run):
        """The paper's Table 6: total change ~ 1e-13."""
        _, _, res = sedov_2d_run
        rel = abs(res.energy_change) / res.energy_history[0].total
        assert rel < 1e-11

    def test_kinetic_energy_grows_from_zero(self, sedov_2d_run):
        _, _, res = sedov_2d_run
        assert res.energy_history[0].kinetic == pytest.approx(0.0, abs=1e-15)
        assert res.energy_history[-1].kinetic > 1e-4

    def test_density_positive(self, sedov_2d_run):
        _, s, _ = sedov_2d_run
        rho = s.density_at_points()
        assert np.all(rho > 0)

    def test_boundary_velocity_stays_zero(self, sedov_2d_run):
        _, s, _ = sedov_2d_run
        assert np.allclose(s.state.v[s.bc.mask], 0.0, atol=1e-14)

    def test_outward_motion(self, sedov_2d_run):
        """The blast pushes the mesh outward near the origin."""
        _, s, _ = sedov_2d_run
        disp = s.state.x - s.kinematic.node_coords
        r0 = np.linalg.norm(s.kinematic.node_coords, axis=1)
        near = (r0 > 1e-12) & (r0 < 0.4)
        radial = np.sum(disp[near] * s.kinematic.node_coords[near], axis=1) / r0[near]
        assert radial.mean() > 0

    def test_workload_recorded(self, sedov_2d_run):
        _, _, res = sedov_2d_run
        w = res.workload
        assert w.steps == res.steps
        assert w.force_evals >= 2 * res.steps
        assert w.pcg_iterations > 0
        assert w.nzones == 16


class TestSedovShockPosition:
    def test_shock_radius_tracks_analytic(self):
        """Longer 2D run: density peak near the self-similar radius."""
        p = SedovProblem(dim=2, order=2, zones_per_dim=8)
        s = LagrangianHydroSolver(p)
        s.run(t_final=0.2)
        rho = s.density_at_points()
        pts = s.engine.geom_eval.physical_points(s.state.x).reshape(-1, 2)
        r_peak = np.linalg.norm(pts[np.argmax(rho.ravel())])
        expect = p.shock_radius(0.2)
        assert r_peak == pytest.approx(expect, rel=0.25)

    def test_max_compression_bounded(self):
        """Density never exceeds the strong-shock limit (gamma+1)/(gamma-1)."""
        p = SedovProblem(dim=2, order=2, zones_per_dim=8)
        s = LagrangianHydroSolver(p)
        s.run(t_final=0.2)
        rho = s.density_at_points()
        limit = (p.gamma + 1) / (p.gamma - 1)
        assert rho.max() < 1.25 * limit  # small overshoot allowed


class TestSedov3D:
    def test_short_run_conserves(self):
        p = SedovProblem(dim=3, order=2, zones_per_dim=2)
        s = LagrangianHydroSolver(p)
        res = s.run(t_final=0.02)
        assert res.reached_t_final
        rel = abs(res.energy_change) / res.energy_history[0].total
        assert rel < 1e-11

    def test_q1_also_works(self):
        p = SedovProblem(dim=3, order=1, zones_per_dim=3)
        s = LagrangianHydroSolver(p)
        res = s.run(t_final=0.02)
        assert res.reached_t_final


class TestTriplePoint:
    def test_initial_energy_matches_paper(self):
        """Table 6 reports total energy 1.005e+01 for the triple point."""
        p = TriplePointProblem(order=2, nx=14, ny=6)
        s = LagrangianHydroSolver(p)
        assert s.energies().total == pytest.approx(10.05, rel=1e-10)

    def test_conservation(self):
        p = TriplePointProblem(order=2, nx=7, ny=3)
        s = LagrangianHydroSolver(p)
        res = s.run(t_final=0.1)
        rel = abs(res.energy_change) / res.energy_history[0].total
        assert rel < 1e-11

    def test_shock_moves_right(self):
        """The driver pushes material in +x: net x-momentum develops."""
        p = TriplePointProblem(order=2, nx=7, ny=3)
        s = LagrangianHydroSolver(p)
        s.run(t_final=0.1)
        from repro.hydro.diagnostics import total_momentum

        mom = total_momentum(s.state, s.mass_v)
        assert mom[0] > 0

    def test_three_materials_present(self):
        p = TriplePointProblem(order=2, nx=14, ny=6)
        region = p.region_of_zones()
        assert set(region) == {0, 1, 2}


class TestTaylorGreen:
    def test_smooth_flow_keeps_energy(self):
        p = TaylorGreenProblem(order=3, zones_per_dim=3)
        s = LagrangianHydroSolver(p)
        res = s.run(t_final=0.05)
        rel = abs(res.energy_change) / res.energy_history[0].total
        assert rel < 1e-12

    def test_initial_kinetic_energy(self):
        p = TaylorGreenProblem(order=4, zones_per_dim=3)
        s = LagrangianHydroSolver(p)
        assert s.energies().kinetic == pytest.approx(p.initial_kinetic_energy(), rel=1e-6)

    def test_viscosity_off_by_default(self):
        p = TaylorGreenProblem()
        assert not p.viscosity().enabled


class TestSolverOptions:
    def test_custom_quadrature(self):
        p = SedovProblem(dim=2, order=2, zones_per_dim=2)
        s = LagrangianHydroSolver(p, SolverOptions(quad_points_1d=3))
        assert s.quad.nqp == 9

    def test_max_steps_cap(self):
        p = SedovProblem(dim=2, order=1, zones_per_dim=4)
        s = LagrangianHydroSolver(p, SolverOptions(max_steps=3))
        res = s.run(t_final=10.0)
        assert res.steps == 3
        assert not res.reached_t_final

    def test_looser_pcg_tol_degrades_conservation(self):
        p = SedovProblem(dim=2, order=2, zones_per_dim=3)
        tight = LagrangianHydroSolver(p, SolverOptions(pcg_tol=1e-14)).run(t_final=0.03)
        p2 = SedovProblem(dim=2, order=2, zones_per_dim=3)
        loose = LagrangianHydroSolver(p2, SolverOptions(pcg_tol=1e-4)).run(t_final=0.03)
        assert abs(tight.energy_change) <= abs(loose.energy_change) + 1e-15

    def test_energy_every(self):
        p = SedovProblem(dim=2, order=1, zones_per_dim=3)
        s = LagrangianHydroSolver(p, SolverOptions(energy_every=1000))
        res = s.run(t_final=0.02)
        # Only initial + final recorded.
        assert len(res.energy_history) == 2
