"""Tests for the telemetry subsystem and the `repro.api` facade.

Covers: span tree structure on a deterministic fake clock, exact
energy attribution against an independently computed power integral,
Chrome-trace / JSONL schema validity, the telemetry-off no-op
guarantee, facade parity (api.run == manual wiring, bit for bit) and
the deprecation shims.
"""

import json
import warnings

import numpy as np
import pytest

from repro.config import RunConfig, _internal_construction
from repro.telemetry import (
    NULL_SPAN,
    CounterSampler,
    RunManifest,
    Tracer,
    chrome_trace,
    jsonl_records,
)


class FakeClock:
    """Deterministic monotonic clock: advances only on demand."""

    def __init__(self):
        self.t = 100.0  # nonzero epoch: exercises the relative offsets

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_tracer():
    clock = FakeClock()
    return Tracer(clock=clock), clock


class TestSpanTree:
    def test_nesting_and_ordering(self):
        tr, clock = make_tracer()
        with tr.span("run", category="run"):
            clock.advance(1.0)
            with tr.span("step", category="step"):
                clock.advance(0.5)
                with tr.span("force", category="phase"):
                    clock.advance(2.0)
            clock.advance(0.25)
        names = [s.name for s in tr.spans]
        assert names == ["run", "step", "force"]
        run, step, force = tr.spans
        # Parents always carry a smaller index than children.
        assert run.parent == -1 and step.parent == 0 and force.parent == 1
        assert (run.depth, step.depth, force.depth) == (0, 1, 2)
        # Windows nest: child ⊆ parent on the fake clock.
        assert run.t0_s <= step.t0_s <= force.t0_s
        assert force.t1_s <= step.t1_s <= run.t1_s
        assert force.duration_s == pytest.approx(2.0)
        assert run.duration_s == pytest.approx(3.75)

    def test_sibling_spans_share_parent(self):
        tr, clock = make_tracer()
        with tr.span("step"):
            for _ in range(3):
                clock.advance(0.1)
                with tr.span("stage"):
                    clock.advance(0.2)
        stages = [s for s in tr.spans if s.name == "stage"]
        assert len(stages) == 3
        assert all(s.parent == 0 and s.depth == 1 for s in stages)

    def test_out_of_order_close_raises(self):
        tr, _ = make_tracer()
        outer = tr.span("outer")
        inner = tr.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            tr._close(outer.index)

    def test_instant_events_recorded(self):
        tr, clock = make_tracer()
        clock.advance(1.0)
        tr.instant("fault", category="resilience", kind="gpu", step=3)
        assert tr.events == [
            {"name": "fault", "category": "resilience", "t_s": 1.0,
             "kind": "gpu", "step": 3}
        ]

    def test_current_tracks_innermost(self):
        tr, _ = make_tracer()
        assert tr.current is None
        with tr.span("a"):
            assert tr.current.name == "a"
            with tr.span("b"):
                assert tr.current.name == "b"
            assert tr.current.name == "a"
        assert tr.current is None


class TestEnergyAttribution:
    def _sampler(self, **kw):
        return CounterSampler(cpu="E5-2670", period_s=0.5, **kw)

    def test_leaf_attribution_matches_independent_integral(self):
        """Sum over spans + idle == piecewise-constant power integral."""
        tr, clock = make_tracer()
        sampler = self._sampler()
        tr.add_listener(sampler)
        # Timeline: 1 s idle, then run[ step[ force(2 s) cg(1 s) ] ] with
        # 0.5 s of step-self time, then 0.5 s idle tail.
        clock.advance(1.0)
        with tr.span("run", category="run"):
            with tr.span("step", category="step"):
                with tr.span("force", category="phase"):
                    clock.advance(2.0)
                with tr.span("cg", category="phase"):
                    clock.advance(1.0)
                clock.advance(0.5)
        clock.advance(0.5)
        tr.finish()

        def watts(name):
            u = sampler.utilization[name]
            m = sampler._model
            return m.package_power(u) + m.dram_power(u)

        expected = (
            1.5 * watts(None)       # lead-in + tail idle
            + 2.0 * watts("force")
            + 1.0 * watts("cg")
            + 0.5 * watts("step")   # step self time
        )
        assert sampler.total_energy_j == pytest.approx(expected, rel=1e-12)
        # Per-phase leaf attribution recovers each term exactly.
        table = tr.leaf_energy_table()
        assert table["force"]["cpu_j"] == pytest.approx(2.0 * watts("force"), rel=1e-12)
        assert table["cg"]["cpu_j"] == pytest.approx(1.0 * watts("cg"), rel=1e-12)
        assert table["step"]["cpu_j"] == pytest.approx(0.5 * watts("step"), rel=1e-12)
        attributed = sum(r["cpu_j"] + r["gpu_j"] for r in table.values())
        assert attributed + 1.5 * watts(None) == pytest.approx(
            sampler.total_energy_j, rel=1e-12
        )

    def test_inclusive_energy_rolls_children_up(self):
        tr, clock = make_tracer()
        sampler = self._sampler()
        tr.add_listener(sampler)
        with tr.span("step"):
            with tr.span("force"):
                clock.advance(1.0)
            with tr.span("cg"):
                clock.advance(1.0)
        tr.finish()
        incl = tr.inclusive_energy()
        leaf_sum = tr.spans[1].cpu_j + tr.spans[2].cpu_j
        assert incl[0][0] == pytest.approx(tr.spans[0].cpu_j + leaf_sum)

    def test_gpu_idle_metering(self):
        tr, clock = make_tracer()
        sampler = self._sampler(gpu="K20")
        tr.add_listener(sampler)
        with tr.span("force"):
            clock.advance(2.0)
        tr.finish()
        assert sampler.gpu_energy_j == pytest.approx(2.0 * sampler.gpu.idle_w)

    def test_cadence_samples_emitted(self):
        tr, clock = make_tracer()
        sampler = self._sampler()
        tr.add_listener(sampler)
        with tr.span("force"):
            clock.advance(5.0)
        tr.finish()
        assert len(sampler.samples) == pytest.approx(10, abs=1)
        assert sampler.samples[1].t_s - sampler.samples[0].t_s == pytest.approx(0.5)

    def test_real_run_attribution_sums_to_integral(self):
        """End-to-end: a real solver run's per-phase energy totals agree
        with the integrated power model to well under 1%."""
        from repro.api import run

        report = run("sedov", RunConfig(zones=3, t_final=0.01, telemetry=True))
        energy = report.manifest.energy
        total = energy["attributed_j"] + energy["unattributed_j"]
        assert total == pytest.approx(report.sampler.total_energy_j, rel=1e-9)
        assert sum(energy["phases_j"].values()) == pytest.approx(
            energy["attributed_j"], rel=1e-9
        )


class TestExporters:
    def _traced_pair(self):
        tr, clock = make_tracer()
        sampler = CounterSampler(period_s=0.5)
        tr.add_listener(sampler)
        with tr.span("run", category="run", meta={"problem": "sedov"}):
            with tr.span("force", category="phase"):
                clock.advance(1.0)
            tr.instant("checkpoint", category="resilience", step=1)
        tr.finish()
        return tr, sampler

    def test_chrome_trace_schema(self):
        tr, sampler = self._traced_pair()
        doc = chrome_trace(tr, sampler)
        json.dumps(doc)  # must serialize
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert phases == {"X", "i", "C"}
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] == "t"
        x = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert {e["name"] for e in x} == {"run", "force"}
        # Spans carry inclusive energy in args.
        run_ev = next(e for e in x if e["name"] == "run")
        assert run_ev["args"]["cpu_j"] > 0

    def test_jsonl_stream(self):
        tr, sampler = self._traced_pair()
        records = list(jsonl_records(tr, sampler))
        for rec in records:
            json.dumps(rec)
        assert records[0]["type"] == "meta"
        assert records[0]["counters"]["cpu"] == "E5-2670"
        kinds = [r["type"] for r in records]
        assert kinds.count("span") == 2
        assert kinds.count("event") == 1
        assert kinds.count("sample") == len(sampler.samples)
        span = next(r for r in records if r["type"] == "span" and r["name"] == "force")
        assert span["parent"] == 0 and span["depth"] == 1

    def test_manifest_from_traced_run(self):
        from repro.api import run

        report = run("sedov", RunConfig(zones=3, t_final=0.01, telemetry=True))
        m = report.manifest
        assert isinstance(m, RunManifest)
        doc = json.loads(m.to_json())
        assert doc["problem"] == "sedov"
        assert set(doc["energy"]["phases_j"]) == {"force", "cg", "other"}
        assert doc["telemetry"]["cpu"] == "E5-2670"
        assert doc["phases"]  # phase table present
        assert "force" in m.summary() or "energy" in m.summary()


class TestTelemetryOff:
    def test_disabled_tracer_is_null(self):
        tr = Tracer(enabled=False)
        assert tr.span("anything", category="x") is NULL_SPAN
        with tr.span("anything") as s:
            assert s is None
        tr.instant("fault")
        tr.finish()
        assert tr.spans == [] and tr.events == []

    def test_solver_without_tracer_allocates_no_spans(self):
        from repro.problems import SedovProblem
        from repro.hydro.solver import LagrangianHydroSolver

        problem = SedovProblem(dim=2, order=2, zones_per_dim=3)
        solver = LagrangianHydroSolver(problem, RunConfig())
        assert solver.tracer is None
        assert solver.engine.tracer is None
        assert solver.timers.tracer is None
        solver.run(t_final=0.01)

    def test_disabled_tracer_passed_in_is_dropped(self):
        from repro.problems import SedovProblem
        from repro.hydro.solver import LagrangianHydroSolver

        problem = SedovProblem(dim=2, order=2, zones_per_dim=3)
        solver = LagrangianHydroSolver(
            problem, RunConfig(), tracer=Tracer(enabled=False)
        )
        assert solver.tracer is None


class TestFacade:
    def test_parity_with_manual_wiring(self):
        """api.run (telemetry off) is bit-identical to manual wiring."""
        from repro.api import run
        from repro.hydro.solver import LagrangianHydroSolver, SolverOptions
        from repro.problems import SedovProblem

        problem = SedovProblem(dim=2, order=2, zones_per_dim=3)
        with _internal_construction():
            manual = LagrangianHydroSolver(problem, SolverOptions()).run(t_final=0.02)
        report = run("sedov", RunConfig(zones=3, t_final=0.02))
        assert report.steps == manual.steps
        assert np.array_equal(report.state.v, manual.state.v)
        assert np.array_equal(report.state.e, manual.state.e)
        assert np.array_equal(report.state.x, manual.state.x)

    def test_telemetry_does_not_change_physics(self):
        from repro.api import run

        plain = run("sedov", RunConfig(zones=3, t_final=0.02))
        traced = run("sedov", RunConfig(zones=3, t_final=0.02, telemetry=True))
        assert np.array_equal(plain.state.v, traced.state.v)
        assert np.array_equal(plain.state.e, traced.state.e)
        assert traced.tracer is not None and len(traced.tracer.spans) > 0

    def test_overrides_and_problem_object(self):
        from repro.api import run
        from repro.problems import SedovProblem

        problem = SedovProblem(dim=2, order=2, zones_per_dim=3)
        report = run(problem, RunConfig(t_final=0.05), max_steps=2)
        assert report.steps <= 2
        assert report.config.max_steps == 2

    def test_resilient_path(self, tmp_path):
        from repro.api import run

        report = run("sedov", RunConfig(
            zones=3, t_final=0.01, checkpoint_every=1, telemetry=True,
        ))
        assert report.recovery is not None
        assert report.recovery.checkpoints_written >= 1
        assert "step" in report.manifest.phases
        # Driver owns the root span; checkpoints appear as instants.
        roots = [s for s in report.tracer.spans if s.parent == -1]
        assert [s.name for s in roots] == ["run"]
        assert any(ev["name"] == "checkpoint" for ev in report.tracer.events)

    def test_distributed_path(self):
        from repro.api import run

        report = run("sedov", RunConfig(zones=3, t_final=0.01, ranks=2,
                                        telemetry=True))
        assert report.mpi_traffic is not None
        assert report.mpi_traffic.messages > 0
        assert [s.name for s in report.tracer.spans if s.parent == -1] == ["run"]

    def test_exports_written(self, tmp_path):
        from repro.api import run

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "run.jsonl"
        run("sedov", RunConfig(zones=3, t_final=0.01,
                               trace_path=str(trace), metrics_path=str(metrics)))
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert any(r["type"] == "span" for r in lines)

    def test_workers_ranks_compose(self):
        # The old workers-xor-ranks restriction is gone: ranks wrap the
        # resolved node backend (here cpu-parallel) per rank.
        cfg = RunConfig(workers=2, ranks=2)
        assert cfg.resolved_execution == {
            "ranks": 2, "backend": "cpu-parallel", "workers": 2,
        }


class TestDeprecationShims:
    def test_solver_options_warns_and_routes_through_config(self):
        from repro.hydro.solver import SolverOptions

        with pytest.warns(DeprecationWarning, match="RunConfig"):
            opts = SolverOptions(cfl=0.4, fused=False, workers=0)
        assert isinstance(opts.config, RunConfig)
        assert opts.config.engine == "legacy"
        assert opts.config.cfl == 0.4

    def test_resilient_driver_warns(self):
        from repro.hydro.solver import LagrangianHydroSolver
        from repro.problems import SedovProblem
        from repro.resilience import ResilientDriver

        solver = LagrangianHydroSolver(
            SedovProblem(dim=2, order=2, zones_per_dim=3), RunConfig()
        )
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            ResilientDriver(solver)

    def test_facade_path_emits_no_deprecation(self):
        from repro.api import run

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run("sedov", RunConfig(zones=3, t_final=0.005, checkpoint_every=5))

    def test_roundtrip_config_options(self):
        opts = RunConfig(engine="legacy", workers=0, cfl=0.3).to_solver_options()
        back = RunConfig.from_solver_options(opts)
        assert back.engine == "legacy" and back.cfl == 0.3
