"""Tests for batched GEMM/GEMV helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.batched import (
    batched_gemm,
    batched_gemm_nt,
    batched_gemm_tn,
    batched_gemv,
    batched_gemv_t,
    gemm_flops,
    gemv_flops,
)


class TestBatchedGemm:
    def test_matches_loop(self, rng):
        a = rng.standard_normal((7, 4, 3))
        b = rng.standard_normal((7, 3, 5))
        c = batched_gemm(a, b)
        for i in range(7):
            assert np.allclose(c[i], a[i] @ b[i])

    def test_nt_variant(self, rng):
        a = rng.standard_normal((5, 81, 64))
        b = rng.standard_normal((5, 8, 64))
        c = batched_gemm_nt(a, b)
        assert c.shape == (5, 81, 8)  # the paper's Fz = Az B^T shape
        assert np.allclose(c[2], a[2] @ b[2].T)

    def test_tn_variant(self, rng):
        a = rng.standard_normal((4, 3, 6))
        b = rng.standard_normal((4, 3, 2))
        c = batched_gemm_tn(a, b)
        assert np.allclose(c[1], a[1].T @ b[1])

    def test_broadcasting_few_b(self, rng):
        """Kernel 3's pattern: many A, one shared B."""
        a = rng.standard_normal((10, 3, 3))
        b = rng.standard_normal((3, 3))
        c = batched_gemm(a, b)
        assert np.allclose(c[4], a[4] @ b)

    def test_shape_errors(self, rng):
        with pytest.raises(ValueError):
            batched_gemm(rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 3, 4)))
        with pytest.raises(ValueError):
            batched_gemm_nt(rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 3, 5)))
        with pytest.raises(ValueError):
            batched_gemm_tn(rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 4, 4)))
        with pytest.raises(ValueError):
            batched_gemm(np.ones(3), np.ones((3, 3)))


class TestBatchedGemv:
    def test_matches_loop(self, rng):
        a = rng.standard_normal((6, 81, 8))
        x = rng.standard_normal((6, 8))
        y = batched_gemv(a, x)
        assert y.shape == (6, 81)
        for i in range(6):
            assert np.allclose(y[i], a[i] @ x[i])

    def test_transposed(self, rng):
        a = rng.standard_normal((6, 81, 8))
        v = rng.standard_normal((6, 81))
        y = batched_gemv_t(a, v)
        assert y.shape == (6, 8)
        assert np.allclose(y[3], a[3].T @ v[3])

    def test_shared_vector(self, rng):
        """Kernel 8's F.1 is a gemv against the shared ones vector."""
        a = rng.standard_normal((4, 5, 3))
        ones = np.ones(3)
        y = batched_gemv(a, ones)
        assert np.allclose(y, a.sum(axis=-1))

    def test_shape_errors(self, rng):
        with pytest.raises(ValueError):
            batched_gemv(rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 3)))
        with pytest.raises(ValueError):
            batched_gemv_t(rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 4)))


class TestFlopCounts:
    def test_gemm_flops(self):
        assert gemm_flops(10, 3, 3, 3) == 10 * 2 * 27

    def test_gemv_flops(self):
        # Table 4 workload: 4096 batches of 81x8
        assert gemv_flops(4096, 81, 8) == 2 * 4096 * 81 * 8

    def test_paper_flop_per_element_ratio(self):
        """Batched DIM x DIM GEMM does 2*DIM/3 flops per element moved
        (Section 3.2): data = 3 matrices of DIM^2, flops = 2 DIM^3."""
        for dim in (2, 3):
            flops = gemm_flops(1, dim, dim, dim)
            elements = 3 * dim * dim
            assert flops / elements == pytest.approx(2 * dim / 3)


class TestProperties:
    @given(
        b=st.integers(1, 8),
        m=st.integers(1, 6),
        k=st.integers(1, 6),
        n=st.integers(1, 6),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_gemm_linearity(self, b, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((b, m, k))
        x = rng.standard_normal((b, k, n))
        y = rng.standard_normal((b, k, n))
        left = batched_gemm(a, x + y)
        right = batched_gemm(a, x) + batched_gemm(a, y)
        assert np.allclose(left, right, atol=1e-10)

    @given(b=st.integers(1, 6), m=st.integers(1, 7), n=st.integers(1, 7), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_gemv_transpose_adjoint(self, b, m, n, seed):
        """<A x, y> == <x, A^T y> for every batch entry."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((b, m, n))
        x = rng.standard_normal((b, n))
        y = rng.standard_normal((b, m))
        lhs = np.einsum("bm,bm->b", batched_gemv(a, x), y)
        rhs = np.einsum("bn,bn->b", x, batched_gemv_t(a, y))
        assert np.allclose(lhs, rhs, atol=1e-10)
