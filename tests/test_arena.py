"""Tests for `repro.runtime.arena`: the pool allocator under Workspace.

Covers bucketing and block reuse, alignment, name-tagged leases,
high-water accounting, thread safety at the lease/release boundary,
and the Workspace shim's release-on-shape-change behaviour that keeps
mesh-size churn allocation-free.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.hydro.workspace import Workspace
from repro.runtime.arena import ALIGNMENT, Arena, bucket_size


class TestBucketing:
    def test_buckets_are_powers_of_two_with_floor(self):
        assert bucket_size(1) == 256
        assert bucket_size(256) == 256
        assert bucket_size(257) == 512
        assert bucket_size(1 << 20) == 1 << 20
        assert bucket_size((1 << 20) + 1) == 1 << 21

    def test_release_then_lease_reuses_the_block(self):
        arena = Arena()
        a, la = arena.alloc("a", (100,))  # 800 B -> 1 KiB bucket
        arena.release(la)
        b, lb = arena.alloc("b", (120,))  # 960 B -> same bucket
        assert arena.block_allocations == 1
        assert arena.block_reuses == 1
        assert lb.block is la.block

    def test_different_buckets_do_not_cross_reuse(self):
        arena = Arena()
        _, small = arena.alloc("small", (10,))
        arena.release(small)
        _, big = arena.alloc("big", (10_000,))
        assert arena.block_reuses == 0
        assert arena.block_allocations == 2

    def test_double_release_is_idempotent(self):
        arena = Arena()
        _, lease = arena.alloc("x", (8,))
        arena.release(lease)
        arena.release(lease)
        assert arena.releases == 1
        assert arena.live_leases == 0


class TestAlignmentAndViews:
    def test_views_are_cache_line_aligned(self):
        arena = Arena()
        for i in range(8):
            buf, _ = arena.alloc(f"b{i}", (33, 7))
            assert buf.ctypes.data % ALIGNMENT == 0

    def test_view_shape_dtype_and_writability(self):
        arena = Arena()
        buf, lease = arena.alloc("f32", (4, 5), dtype=np.float32)
        assert buf.shape == (4, 5) and buf.dtype == np.float32
        buf[:] = 7.0
        assert lease.name == "f32"
        assert lease.nbytes == 4 * 5 * 4


class TestStats:
    def test_high_water_tracks_peak_footprint(self):
        arena = Arena(name="hw")
        leases = [arena.alloc(f"x{i}", (1000,))[1] for i in range(4)]
        peak = arena.high_water_bytes
        assert peak == 4 * bucket_size(8000)
        for lease in leases:
            arena.release(lease)
        # Freed blocks stay in the pool: footprint (leased + free) holds.
        assert arena.high_water_bytes == peak
        arena.alloc("again", (1000,))
        assert arena.high_water_bytes == peak  # reuse adds nothing

    def test_stats_snapshot_shape(self):
        arena = Arena(name="snap")
        _, lease = arena.alloc("a", (100,))
        arena.release(lease)
        arena.alloc("b", (50_000,))
        s = arena.stats()
        assert s["name"] == "snap"
        assert s["alignment"] == ALIGNMENT
        assert s["live_leases"] == 1
        assert s["block_allocations"] == 2 and s["releases"] == 1
        assert s["leased_bytes"] == bucket_size(400_000)
        assert s["free_bytes"] == bucket_size(800)
        assert s["free_buckets"] == {str(bucket_size(800)): 1}
        assert s["high_water_bytes"] == s["leased_bytes"] + s["free_bytes"]

    def test_concurrent_lease_release_consistency(self):
        arena = Arena()

        def churn():
            for _ in range(200):
                _, lease = arena.alloc("t", (512,))
                arena.release(lease)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arena.live_leases == 0
        assert arena.leased_bytes == 0
        assert arena.releases == 800
        # All threads' blocks fit in however many were live at once.
        assert arena.block_allocations <= 4
        assert arena.free_bytes == arena.block_allocations * bucket_size(512 * 8)


class TestWorkspaceShim:
    def test_shape_change_releases_back_to_arena(self):
        arena = Arena()
        ws = Workspace(arena=arena)
        ws.get("buf", (100, 8))
        assert arena.live_leases == 1
        ws.get("buf", (120, 8))  # shape change: miss, but block recycled
        assert ws.misses == 2
        assert arena.live_leases == 1
        assert arena.block_reuses == 1  # same 8 KiB bucket, no new block

    def test_two_workspaces_share_one_arena(self):
        arena = Arena()
        ws1 = Workspace(arena=arena)
        ws2 = Workspace(arena=arena)
        ws1.get("a", (500,))
        ws1.close()
        ws2.get("b", (500,))
        assert arena.block_allocations == 1
        assert arena.block_reuses == 1

    def test_close_releases_all_leases(self):
        arena = Arena()
        ws = Workspace(arena=arena)
        ws.get("a", (10,))
        ws.get("b", (20, 3))
        ws.close()
        assert arena.live_leases == 0
        assert len(ws) == 0

    def test_private_arena_by_default(self):
        ws = Workspace()
        a = ws.get("a", (4, 4))
        assert ws.get("a", (4, 4)) is a  # pinned semantics intact
        assert ws.arena.live_leases == 1

    def test_dtype_change_is_a_miss_and_recycles(self):
        arena = Arena()
        ws = Workspace(arena=arena)
        a = ws.get("buf", (64,), dtype=np.float64)
        b = ws.get("buf", (64,), dtype=np.float32)
        assert b is not a and b.dtype == np.float32
        assert arena.live_leases == 1

    def test_solver_mesh_resize_reuses_blocks(self):
        """The warm-pool scenario: same arena, growing then shrinking
        meshes — the second pass allocates nothing new."""
        from repro.config import RunConfig
        from repro.hydro.solver import LagrangianHydroSolver
        from repro.problems import SedovProblem

        arena = Arena(name="pool")

        def run_once(zones: int) -> None:
            solver = LagrangianHydroSolver(
                SedovProblem(dim=2, order=2, zones_per_dim=zones),
                RunConfig(zones=zones, max_steps=2),
                arena=arena,
            )
            solver.run(max_steps=2)
            solver.close()
            solver.release_workspaces()

        for zones in (4, 6, 4, 6):
            run_once(zones)
        allocs = arena.block_allocations
        for zones in (6, 4, 6, 4):
            run_once(zones)
        assert arena.block_allocations == allocs  # steady state: reuse only
        assert arena.block_reuses > 0
        assert arena.live_leases == 0
