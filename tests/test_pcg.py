"""Tests for the preconditioned conjugate gradient solver."""

import numpy as np
import pytest

from repro.linalg.csr import CSRMatrix
from repro.linalg.pcg import pcg


def spd_matrix(rng, n, cond=10.0):
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    w = np.linspace(1.0, cond, n)
    return q @ np.diag(w) @ q.T


class TestPCG:
    def test_solves_identity(self):
        a = CSRMatrix.identity(5)
        b = np.arange(5.0)
        res = pcg(a, b)
        assert res.converged
        assert np.allclose(res.x, b)

    def test_solves_random_spd(self, rng):
        a = spd_matrix(rng, 30)
        m = CSRMatrix.from_dense(a)
        x_true = rng.standard_normal(30)
        b = a @ x_true
        res = pcg(m, b, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_jacobi_helps_ill_conditioned_diagonal(self, rng):
        n = 40
        d = np.logspace(0, 6, n)
        a = np.diag(d)
        a[0, 1] = a[1, 0] = 0.1
        m = CSRMatrix.from_dense(a)
        b = rng.standard_normal(n)
        res_precond = pcg(m, b, tol=1e-12)
        res_plain = pcg(m.matvec, b, diag=None, tol=1e-12, maxiter=res_precond.iterations)
        # With Jacobi a diagonal-dominant system converges almost instantly.
        assert res_precond.converged
        assert res_precond.iterations <= res_plain.iterations + 1

    def test_callable_operator(self, rng):
        a = spd_matrix(rng, 10)
        b = rng.standard_normal(10)
        res = pcg(lambda x: a @ x, b, diag=np.diag(a), tol=1e-12, maxiter=500)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-8)

    def test_zero_rhs(self):
        a = CSRMatrix.identity(4)
        res = pcg(a, np.zeros(4))
        assert res.converged
        assert res.iterations == 0
        assert np.allclose(res.x, 0.0)

    def test_warm_start(self, rng):
        a = spd_matrix(rng, 20)
        m = CSRMatrix.from_dense(a)
        x_true = rng.standard_normal(20)
        b = a @ x_true
        cold = pcg(m, b, tol=1e-12)
        warm = pcg(m, b, x0=x_true + 1e-8 * rng.standard_normal(20), tol=1e-12)
        assert warm.converged
        assert warm.iterations <= cold.iterations

    def test_maxiter_respected(self, rng):
        a = spd_matrix(rng, 50, cond=1e6)
        m = CSRMatrix.from_dense(a)
        res = pcg(m, rng.standard_normal(50), tol=1e-15, maxiter=3)
        assert res.iterations == 3
        assert not res.converged

    def test_residual_norms_monotone_overall(self, rng):
        a = spd_matrix(rng, 25)
        m = CSRMatrix.from_dense(a)
        res = pcg(m, rng.standard_normal(25), tol=1e-12)
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_counts_populated(self, rng):
        a = spd_matrix(rng, 15)
        m = CSRMatrix.from_dense(a)
        res = pcg(m, rng.standard_normal(15), tol=1e-10)
        assert res.spmv_count == res.iterations
        assert res.flops > 0

    def test_rejects_nonpositive_diag(self):
        a = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            pcg(a, np.ones(3), diag=np.array([1.0, -1.0, 1.0]))

    def test_size_mismatch(self):
        a = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            pcg(a, np.ones(4))

    def test_exact_in_n_iterations(self, rng):
        """CG terminates in at most n iterations in exact arithmetic."""
        n = 8
        a = spd_matrix(rng, n, cond=5.0)
        m = CSRMatrix.from_dense(a)
        res = pcg(m, rng.standard_normal(n), tol=1e-13)
        assert res.converged
        assert res.iterations <= n + 2
