"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space, L2Space


@pytest.fixture
def rng():
    return np.random.default_rng(20140519)  # IPDPS 2014 conference date


@pytest.fixture
def mesh2d():
    return cartesian_mesh_2d(3, 2)


@pytest.fixture
def mesh3d():
    return cartesian_mesh_3d(2, 2, 2)


@pytest.fixture
def h1_q2_2d(mesh2d):
    return H1Space(mesh2d, 2)


@pytest.fixture
def l2_q1_2d(mesh2d):
    return L2Space(mesh2d, 1)


@pytest.fixture
def quad2d():
    return tensor_quadrature(2, 4)


@pytest.fixture
def quad3d():
    return tensor_quadrature(3, 4)
