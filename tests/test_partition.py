"""Tests for domain partitioning."""

import numpy as np
import pytest

from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.partition import (
    partition_balance,
    partition_cartesian,
    partition_rcb,
    zone_adjacency,
)


class TestCartesianPartition:
    def test_2d_split(self):
        mesh = cartesian_mesh_2d(4, 4)
        rank = partition_cartesian(mesh, (2, 2))
        assert rank.shape == (16,)
        assert set(rank) == {0, 1, 2, 3}
        counts = np.bincount(rank)
        assert np.all(counts == 4)

    def test_3d_split(self):
        mesh = cartesian_mesh_3d(4, 4, 4)
        rank = partition_cartesian(mesh, (2, 2, 2))
        assert np.all(np.bincount(rank) == 8)

    def test_uneven_split_balanced(self):
        mesh = cartesian_mesh_2d(5, 3)
        rank = partition_cartesian(mesh, (2, 1))
        counts = np.bincount(rank)
        assert sorted(counts) == [6, 9]  # 2- and 3-column blocks x 3 rows

    def test_contiguous_blocks(self):
        """Zones of one rank form a contiguous block in x."""
        mesh = cartesian_mesh_2d(4, 1)
        rank = partition_cartesian(mesh, (2, 1))
        assert list(rank) == [0, 0, 1, 1]

    def test_single_part(self):
        mesh = cartesian_mesh_2d(3, 3)
        assert np.all(partition_cartesian(mesh, (1, 1)) == 0)

    def test_rejects_too_many_parts(self):
        mesh = cartesian_mesh_2d(2, 2)
        with pytest.raises(ValueError):
            partition_cartesian(mesh, (3, 1))

    def test_requires_generator_mesh(self):
        mesh = cartesian_mesh_2d(2, 2)
        mesh.grid_shape = None
        with pytest.raises(ValueError):
            partition_cartesian(mesh, (2, 1))


class TestRCB:
    def test_balanced_power_of_two(self, rng):
        pts = rng.random((64, 2))
        rank = partition_rcb(pts, 8)
        assert np.all(np.bincount(rank) == 8)

    def test_balanced_non_power_of_two(self, rng):
        pts = rng.random((30, 3))
        rank = partition_rcb(pts, 5)
        counts = np.bincount(rank, minlength=5)
        assert counts.max() - counts.min() <= 1

    def test_spatial_locality(self):
        """Two well-separated clusters split along the gap."""
        left = np.column_stack([np.linspace(0, 1, 10), np.zeros(10)])
        right = np.column_stack([np.linspace(10, 11, 10), np.zeros(10)])
        rank = partition_rcb(np.vstack([left, right]), 2)
        assert len(set(rank[:10])) == 1
        assert len(set(rank[10:])) == 1
        assert rank[0] != rank[-1]

    def test_single_part(self, rng):
        assert np.all(partition_rcb(rng.random((5, 2)), 1) == 0)

    def test_rejects_more_parts_than_zones(self, rng):
        with pytest.raises(ValueError):
            partition_rcb(rng.random((3, 2)), 4)


class TestHelpers:
    def test_balance_perfect(self):
        assert partition_balance(np.array([0, 0, 1, 1])) == pytest.approx(1.0)

    def test_balance_imbalanced(self):
        assert partition_balance(np.array([0, 0, 0, 1])) == pytest.approx(1.5)

    def test_zone_adjacency_2d(self):
        mesh = cartesian_mesh_2d(2, 1)
        edges = zone_adjacency(mesh)
        assert edges == [(0, 1)]

    def test_zone_adjacency_includes_corner_neighbors(self):
        mesh = cartesian_mesh_2d(2, 2)
        edges = zone_adjacency(mesh)
        # All 4 zones share the center vertex: complete graph on 4.
        assert len(edges) == 6
