"""Tests for the resilient execution layer.

Covers the fault injector, recovery policy, watchdog, hardened
checkpoints, restart equivalence (bit-for-bit on Sedov and
triple-point), and the `ResilientDriver`'s fallback / rollback-and-
replay machinery. Tests named `test_smoke_*` form the fast recovery-path
smoke target (`pytest -q tests/test_resilience.py -k smoke`).
"""

import numpy as np
import pytest

from repro import LagrangianHydroSolver, SedovProblem, TriplePointProblem
from repro.config import RunConfig
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.io import (
    CheckpointCorruptionError,
    load_checkpoint,
    restore_solver,
    save_checkpoint,
)
from repro.kernels import FEConfig
from repro.resilience import (
    BackoffPolicy,
    CheckpointCostModel,
    FaultInjector,
    FaultSpec,
    GpuOffloadPricer,
    GPUKernelFault,
    InvariantViolation,
    PCIeTransferFault,
    RankFailure,
    RecoveryPolicy,
    ResilienceExhausted,
    ResilientDriver,
    Watchdog,
    WatchdogLimits,
    parse_fault_specs,
)
from repro.runtime.distributed import DistributedLagrangianSolver
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.instrumentation import PhaseTimers
from repro.runtime.mpi_sim import SimulatedComm


def sedov():
    return SedovProblem(dim=2, order=2, zones_per_dim=3)


def triple():
    return TriplePointProblem(order=2, nx=4, ny=2)


# A horizon no tiny test run reaches: runs are bounded by max_steps.
FAR = 100.0


# ---------------------------------------------------------------------------
# Fault injector


class TestFaultInjector:
    def test_fires_at_exact_occurrence(self):
        inj = FaultInjector([FaultSpec("gpu", 3)])
        inj.check("gpu")
        inj.check("gpu")
        with pytest.raises(GPUKernelFault):
            inj.check("gpu")
        inj.check("gpu")  # one-shot: never fires again
        assert inj.faults_fired == 1

    def test_sticky_keeps_firing(self):
        inj = FaultInjector([FaultSpec("pcie", 2, sticky=True)])
        inj.check("pcie")
        for _ in range(3):
            with pytest.raises(PCIeTransferFault) as exc:
                inj.check("pcie")
            assert exc.value.sticky

    def test_kernel_name_target_filter(self):
        inj = FaultInjector([FaultSpec("gpu", 1, target="kernel7")])
        inj.check("gpu", detail="kernel3_gemm")  # does not match, not counted
        with pytest.raises(GPUKernelFault):
            inj.check("gpu", detail="kernel7_force")

    def test_rank_failure_carries_rank(self):
        inj = FaultInjector([FaultSpec("rank", 1, target=2)])
        with pytest.raises(RankFailure) as exc:
            inj.check("rank")
        assert exc.value.rank == 2

    def test_corrupt_state_nan_and_blowup(self):
        state = LagrangianHydroSolver(sedov()).state
        inj = FaultInjector([FaultSpec("state", 2), FaultSpec("state", 3, target="blowup")])
        assert inj.corrupt_state(state, 1) is None
        assert "NaN" in inj.corrupt_state(state, 2)
        assert not np.isfinite(state.v).all()
        e_before = state.e.copy()
        assert "blown up" in inj.corrupt_state(state, 3)
        assert np.all(np.abs(state.e) >= np.abs(e_before))

    def test_random_rates_are_seeded(self):
        def fired(seed):
            inj = FaultInjector(seed=seed, rates={"gpu": 0.5})
            hits = []
            for i in range(20):
                try:
                    inj.check("gpu")
                    hits.append(False)
                except GPUKernelFault:
                    hits.append(True)
            return hits

        assert fired(7) == fired(7)
        assert any(fired(7))

    def test_parse_specs(self):
        specs = parse_fault_specs("gpu:3,state:12:blowup,rank:2:1,pcie:4!")
        assert specs[0] == FaultSpec("gpu", 3)
        assert specs[1] == FaultSpec("state", 12, target="blowup")
        assert specs[2] == FaultSpec("rank", 2, target=1)
        assert specs[3] == FaultSpec("pcie", 4, sticky=True)

    def test_parse_and_spec_validation(self):
        with pytest.raises(ValueError):
            parse_fault_specs("gpu")
        with pytest.raises(ValueError):
            parse_fault_specs("gpu:x")
        with pytest.raises(ValueError):
            FaultSpec("meteor", 1)
        with pytest.raises(ValueError):
            FaultSpec("gpu", 0)
        with pytest.raises(ValueError):
            FaultSpec("state", 1, target="fire")
        with pytest.raises(ValueError):
            FaultInjector(rates={"gpu": 1.5})


# ---------------------------------------------------------------------------
# Policy


class TestRecoveryPolicy:
    def test_backoff_grows(self):
        b = BackoffPolicy(max_retries=3, base_delay_s=1e-3, multiplier=2.0)
        assert b.delay_s(0) == pytest.approx(1e-3)
        assert b.delay_s(2) == pytest.approx(4e-3)

    def test_retry_then_fallback(self):
        pol = RecoveryPolicy(retry=BackoffPolicy(max_retries=2))
        f = GPUKernelFault("boom")
        assert pol.for_device_fault(f, 0).kind == "retry"
        assert pol.for_device_fault(f, 1).kind == "retry"
        assert pol.for_device_fault(f, 2).kind == "fallback"

    def test_sticky_skips_retries(self):
        pol = RecoveryPolicy()
        f = GPUKernelFault("dead", sticky=True)
        assert pol.for_device_fault(f, 0).kind == "fallback"

    def test_fallback_disabled_exhausts(self):
        pol = RecoveryPolicy(retry=BackoffPolicy(max_retries=0), allow_fallback=False)
        with pytest.raises(ResilienceExhausted):
            pol.for_device_fault(GPUKernelFault("boom"), 0)

    def test_rank_exclusion(self):
        pol = RecoveryPolicy()
        act = pol.for_rank_failure(RankFailure("dead", rank=1), nranks=3)
        assert act.kind == "exclude-rank" and act.rank == 1
        with pytest.raises(ResilienceExhausted):
            pol.for_rank_failure(RankFailure("dead", rank=0), nranks=1)

    def test_rollback_budget(self):
        pol = RecoveryPolicy(max_rollbacks=2)
        assert pol.for_violation(1).kind == "rollback"
        with pytest.raises(ResilienceExhausted):
            pol.for_violation(2)


# ---------------------------------------------------------------------------
# Watchdog


class TestWatchdog:
    def test_detects_nan(self):
        s = LagrangianHydroSolver(sedov())
        w = Watchdog()
        w.arm(s.energies().total, 1e-3)
        w.inspect(s.state, s.energies().total, 1e-3)
        s.state.v[0, 0] = np.nan
        with pytest.raises(InvariantViolation, match="non-finite"):
            w.inspect(s.state, s.energies().total, 1e-3)
        assert len(w.violations) == 1

    def test_detects_energy_drift(self):
        s = LagrangianHydroSolver(sedov())
        w = Watchdog(limits=WatchdogLimits(energy_drift_rel=1e-6))
        e0 = s.energies().total
        w.arm(e0, 1e-3)
        with pytest.raises(InvariantViolation, match="drift"):
            w.inspect(s.state, e0 + 1.0, 1e-3)

    def test_detects_dt_collapse(self):
        s = LagrangianHydroSolver(sedov())
        w = Watchdog()
        w.arm(s.energies().total, 1e-3)
        with pytest.raises(InvariantViolation, match="collapsed"):
            w.inspect(s.state, None, 1e-14)


# ---------------------------------------------------------------------------
# Hardened checkpoints


class TestCheckpointHardening:
    def test_smoke_roundtrip_has_checksum(self, tmp_path):
        s = LagrangianHydroSolver(sedov())
        path = save_checkpoint(tmp_path / "c", s)
        with np.load(path) as data:
            assert "sha256" in data.files
        chk = load_checkpoint(path)
        assert np.array_equal(chk["v"], s.state.v)
        assert not list(tmp_path.glob(".*tmp"))  # atomic write left no debris

    def test_truncated_file_raises_corruption(self, tmp_path):
        s = LagrangianHydroSolver(sedov())
        path = save_checkpoint(tmp_path / "c", s)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorruptionError, match="unreadable"):
            load_checkpoint(path)

    def test_tampered_content_fails_checksum(self, tmp_path):
        s = LagrangianHydroSolver(sedov())
        path = save_checkpoint(tmp_path / "c", s)
        data = dict(np.load(path))
        data["t"] = np.asarray(float(data["t"]) + 1e-9)
        np.savez(path, **data)
        with pytest.raises(CheckpointCorruptionError, match="SHA-256"):
            load_checkpoint(path)
        # verify=False skips the integrity check for forensic reads.
        assert load_checkpoint(path, verify=False)["t"] == pytest.approx(float(data["t"]))

    def test_legacy_version1_loads_without_checksum(self, tmp_path):
        s = LagrangianHydroSolver(sedov())
        path = save_checkpoint(tmp_path / "c", s)
        data = dict(np.load(path))
        del data["sha256"]
        data["format_version"] = np.asarray(1)
        np.savez(path, **data)
        chk = load_checkpoint(path)
        assert int(chk["format_version"]) == 1

    def test_missing_checksum_on_v2_raises(self, tmp_path):
        s = LagrangianHydroSolver(sedov())
        path = save_checkpoint(tmp_path / "c", s)
        data = dict(np.load(path))
        del data["sha256"]
        np.savez(path, **data)
        with pytest.raises(CheckpointCorruptionError, match="checksum"):
            load_checkpoint(path)


# ---------------------------------------------------------------------------
# Restart equivalence (satellite: bit-for-bit on Sedov and triple-point)


class TestRestartEquivalence:
    @pytest.mark.parametrize("make,n1,n2", [(sedov, 5, 5), (triple, 3, 3)],
                             ids=["sedov", "triple-point"])
    def test_restart_matches_uninterrupted_bit_for_bit(self, tmp_path, make, n1, n2):
        uninterrupted = LagrangianHydroSolver(make())
        uninterrupted.run(t_final=FAR, max_steps=n1 + n2)

        first = LagrangianHydroSolver(make())
        first.run(t_final=FAR, max_steps=n1)
        path = save_checkpoint(tmp_path / "mid", first)

        resumed = LagrangianHydroSolver(make())
        restore_solver(path, resumed)
        resumed.run(t_final=FAR, max_steps=n2)

        assert resumed.state.t == uninterrupted.state.t
        assert np.array_equal(resumed.state.v, uninterrupted.state.v)
        assert np.array_equal(resumed.state.e, uninterrupted.state.e)
        assert np.array_equal(resumed.state.x, uninterrupted.state.x)


# ---------------------------------------------------------------------------
# Mailbox hygiene + timers (satellites)


class TestMailboxHygiene:
    def test_recv_empty_names_ranks_and_tag(self):
        comm = SimulatedComm(3)
        comm.send(np.ones(2), 0, 2, tag=7)
        with pytest.raises(RuntimeError, match=r"rank 1 to rank 2.*tag 9"):
            comm.recv(1, 2, tag=9)

    def test_recv_validates_ranks(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError, match="src rank 5"):
            comm.recv(5, 0)
        with pytest.raises(ValueError, match="dest rank -1"):
            comm.recv(0, -1)

    def test_send_validates_ranks(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError, match="out of range"):
            comm.send(np.ones(1), 0, 9)


class TestPhaseTimers:
    def test_to_dict_and_reset(self):
        import time

        t = PhaseTimers()
        with t.measure("a"):
            time.sleep(0.001)
        with t.measure("a"):
            pass
        d = t.to_dict()
        assert d["a"]["calls"] == 2
        assert d["a"]["seconds"] > 0.0
        assert d["a"]["fraction"] == pytest.approx(1.0)
        t.reset()
        assert t.to_dict() == {}


# ---------------------------------------------------------------------------
# Resilient driver


def make_offload(injector, nmpi=1, **policy_kw):
    cfg = FEConfig(dim=2, order=2, nzones=9)
    ex = HybridExecutor(cfg, get_cpu("E5-2670"), get_gpu("K20"), nmpi=nmpi)
    policy = RecoveryPolicy(**policy_kw) if policy_kw else None
    return GpuOffloadPricer(ex, injector=injector, policy=policy)


class TestResilientDriver:
    def test_smoke_fault_free_matches_plain_run(self):
        plain = LagrangianHydroSolver(sedov()).run(t_final=FAR, max_steps=10)
        driver = ResilientDriver(LagrangianHydroSolver(sedov()), checkpoint_every=4)
        res = driver.run(t_final=FAR, max_steps=10)
        assert np.array_equal(res.state.v, plain.state.v)
        assert np.array_equal(res.state.e, plain.state.e)
        assert res.report.rollbacks == 0 and res.report.fallbacks == 0
        assert res.report.checkpoints_written == 2
        assert "step" in res.report.phase_timings

    def test_smoke_gpu_fault_triggers_cpu_fallback(self):
        """Acceptance: a GPU kernel fault mid-run falls back to the CPU
        path and the run completes with physics identical to fault-free."""
        plain = LagrangianHydroSolver(sedov()).run(t_final=FAR, max_steps=8)
        injector = FaultInjector([FaultSpec("gpu", 3, sticky=True)])
        offload = make_offload(injector)
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), injector=injector,
            checkpoint_every=4, offload=offload,
        )
        res = driver.run(t_final=FAR, max_steps=8)
        assert res.report.fallbacks >= 1
        assert res.report.degraded_final
        assert res.reached_t_final or res.steps == 8
        assert np.array_equal(res.state.v, plain.state.v)
        assert np.array_equal(res.state.e, plain.state.e)
        # Every step priced on the CPU path (fault fires during step 1,
        # sticky => no retries, so no backoff penalty is added).
        assert res.report.offload_time_s == pytest.approx(8 * offload.cpu_step_s)

    def test_smoke_corruption_rolls_back_and_replays(self):
        """Acceptance: corrupted state triggers watchdog rollback and the
        replayed run still matches the fault-free physics bit-for-bit,
        with the report accounting for the replay."""
        plain = LagrangianHydroSolver(sedov()).run(t_final=FAR, max_steps=12)
        injector = FaultInjector([FaultSpec("state", 7)])
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), injector=injector, checkpoint_every=5
        )
        res = driver.run(t_final=FAR, max_steps=12)
        assert res.report.rollbacks == 1
        assert res.report.steps_replayed == 2  # corrupted step 7, checkpoint at 5
        assert any(ev.kind == "watchdog" for ev in res.report.faults)
        assert np.array_equal(res.state.v, plain.state.v)
        assert np.array_equal(res.state.e, plain.state.e)
        assert res.state.t == plain.state.t

    def test_blowup_corruption_detected_by_energy_drift(self):
        plain = LagrangianHydroSolver(sedov()).run(t_final=FAR, max_steps=10)
        injector = FaultInjector([FaultSpec("state", 6, target="blowup")])
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), injector=injector, checkpoint_every=4
        )
        res = driver.run(t_final=FAR, max_steps=10)
        assert res.report.rollbacks == 1
        assert np.array_equal(res.state.v, plain.state.v)

    def test_transient_gpu_fault_recovered_by_retry(self):
        injector = FaultInjector([FaultSpec("gpu", 2)])
        offload = make_offload(injector)
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), injector=injector,
            checkpoint_every=4, offload=offload,
        )
        res = driver.run(t_final=FAR, max_steps=6)
        assert res.report.retries >= 1
        assert res.report.fallbacks == 0
        assert not res.report.degraded_final

    def test_pcie_fault_is_recoverable_too(self):
        injector = FaultInjector([FaultSpec("pcie", 2, sticky=True)])
        offload = make_offload(injector)
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), injector=injector,
            checkpoint_every=4, offload=offload,
        )
        res = driver.run(t_final=FAR, max_steps=6)
        assert res.report.fallbacks >= 1

    def test_rank_failure_excludes_rank_and_continues(self):
        ref = LagrangianHydroSolver(sedov()).run(t_final=FAR, max_steps=6)
        injector = FaultInjector([FaultSpec("rank", 5, target=1)])
        solver = DistributedLagrangianSolver(sedov(), nranks=3)
        driver = ResilientDriver(solver, injector=injector, checkpoint_every=4)
        res = driver.run(t_final=FAR, max_steps=6)
        assert solver.nranks == 2
        assert res.report.rank_exclusions == 1
        # Physics matches the serial reference to fp-reordering accuracy.
        assert np.allclose(res.state.v, ref.state.v, rtol=1e-8, atol=1e-10)
        assert np.allclose(res.state.e, ref.state.e, rtol=1e-8, atol=1e-10)

    def test_disk_checkpoints_written_and_verified(self, tmp_path):
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), checkpoint_every=3,
            checkpoint_dir=tmp_path / "ckpts",
        )
        res = driver.run(t_final=FAR, max_steps=7)
        files = sorted((tmp_path / "ckpts").glob("*.npz"))
        assert len(files) == res.report.checkpoints_written == 2
        assert driver.last_disk_checkpoint == files[-1]
        # The newest checkpoint restores into a fresh solver.
        fresh = LagrangianHydroSolver(sedov())
        restore_solver(files[-1], fresh)
        assert fresh.state.t > 0

    def test_checkpoint_keep_prunes_but_never_the_newest(self, tmp_path):
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), checkpoint_every=2,
            checkpoint_dir=tmp_path / "ckpts", checkpoint_keep=2,
        )
        res = driver.run(t_final=FAR, max_steps=9)
        files = sorted((tmp_path / "ckpts").glob("ckpt_step*.npz"))
        assert res.report.checkpoints_written == 4  # steps 2, 4, 6, 8
        assert len(files) == 2  # only the newest two survive
        assert driver.last_disk_checkpoint == files[-1]
        # The retained checkpoints are the *latest* ones and restorable.
        assert [f.name for f in files] == ["ckpt_step000006.npz",
                                           "ckpt_step000008.npz"]
        fresh = LagrangianHydroSolver(sedov())
        restore_solver(files[-1], fresh)
        assert fresh.state.t > 0

    def test_checkpoint_keep_zero_keeps_everything(self, tmp_path):
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), checkpoint_every=2,
            checkpoint_dir=tmp_path / "ckpts",
        )
        res = driver.run(t_final=FAR, max_steps=7)
        files = list((tmp_path / "ckpts").glob("ckpt_step*.npz"))
        assert len(files) == res.report.checkpoints_written == 3

    def test_checkpoint_keep_via_run_config(self, tmp_path):
        from repro.api import run

        report = run("sedov", RunConfig(
            zones=3, t_final=FAR, max_steps=9, checkpoint_every=2,
            checkpoint_dir=str(tmp_path / "ckpts"), checkpoint_keep=1,
        ))
        files = list((tmp_path / "ckpts").glob("ckpt_step*.npz"))
        assert len(files) == 1
        assert report.recovery.checkpoints_written >= 3

    def test_checkpoint_keep_validated(self):
        with pytest.raises(ValueError):
            ResilientDriver(LagrangianHydroSolver(sedov()),
                            checkpoint_every=2, checkpoint_keep=-1)
        with pytest.raises(ValueError):
            RunConfig(checkpoint_keep=-1)

    def test_sticky_corruption_exhausts_rollbacks(self):
        # A sticky state fault re-corrupts after every replay; the policy
        # must eventually give up rather than loop forever.
        injector = FaultInjector([FaultSpec("state", 4, sticky=True)])
        driver = ResilientDriver(
            LagrangianHydroSolver(sedov()), injector=injector,
            policy=RecoveryPolicy(max_rollbacks=2), checkpoint_every=10,
        )
        with pytest.raises(ResilienceExhausted):
            driver.run(t_final=FAR, max_steps=10)

    def test_checkpoint_cost_model(self):
        m = CheckpointCostModel(bandwidth_gbs=1.0, latency_s=1e-3)
        assert m.write_time_s(1e9) == pytest.approx(1.0 + 1e-3)
        with pytest.raises(ValueError):
            m.write_time_s(-1)

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError):
            ResilientDriver(LagrangianHydroSolver(sedov()), checkpoint_every=0)


class TestExcludeRank:
    def test_exclusion_rebuilds_partition(self):
        solver = DistributedLagrangianSolver(sedov(), nranks=3)
        before = solver.comm.traffic.reductions
        solver.exclude_rank(1)
        assert solver.nranks == 2
        assert set(np.unique(solver.zone_rank)) <= {0, 1}
        assert len(solver.ranks) == 2
        assert solver.comm.traffic.reductions == before  # accounting carried over

    def test_exclusion_validation(self):
        solver = DistributedLagrangianSolver(sedov(), nranks=2)
        with pytest.raises(ValueError):
            solver.exclude_rank(5)
        solver.exclude_rank(0)
        with pytest.raises(ValueError):
            solver.exclude_rank(0)

    def test_physics_unchanged_after_exclusion(self):
        ref = DistributedLagrangianSolver(sedov(), nranks=3).run(t_final=FAR, max_steps=4)
        solver = DistributedLagrangianSolver(sedov(), nranks=3)
        solver.exclude_rank(2)
        res = solver.run(t_final=FAR, max_steps=4)
        assert np.allclose(res.state.v, ref.state.v, rtol=1e-10, atol=1e-12)


class TestResilientCLI:
    def test_smoke_cli_resilient_run(self, capsys, tmp_path):
        from repro.cli import main

        rc = main([
            "run", "sedov", "--zones", "3", "--t-final", "1.0", "--max-steps", "8",
            "--faults", "gpu:2,state:5", "--checkpoint-every", "3",
            "--checkpoint-dir", str(tmp_path), "--offload-device", "K20",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resilience report" in out
        assert "rollback" in out
        assert list(tmp_path.glob("*.npz"))
