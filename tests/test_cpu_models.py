"""Tests for the CPU substrate: specs, execution model, RAPL, OpenMP."""

import pytest

from repro.cpu.core_model import CPUExecutionModel
from repro.cpu.openmp import OpenMPModel
from repro.cpu.rapl import RAPLInterface
from repro.cpu.specs import CPU_CATALOG, get_cpu


class TestSpecs:
    def test_e5_2670_paper_numbers(self):
        """Figure 14's part: 8 cores, TDP 115 W, ~95 W loaded package,
        15 W DRAM, <20 W idle."""
        e5 = get_cpu("E5-2670")
        assert e5.cores == 8
        assert e5.tdp_w == 115.0
        assert e5.full_pkg_w == 95.0
        assert e5.dram_w_loaded == 15.0
        assert e5.idle_pkg_w < 20.0

    def test_acp_ratio(self):
        """'Our observation 95W (82%) confirms the AMD reports' — loaded
        package power sits near 82% of TDP across the catalog."""
        for spec in CPU_CATALOG.values():
            assert 0.70 <= spec.full_pkg_w / spec.tdp_w <= 0.90

    def test_peak_gflops(self):
        e5 = get_cpu("E5-2670")
        assert e5.peak_dp_gflops == pytest.approx(8 * 2.6 * 8)

    def test_lookup(self):
        assert get_cpu("x5660").cores == 6
        with pytest.raises(KeyError):
            get_cpu("EPYC")

    def test_gpu_beats_cpu_per_watt(self):
        """The Figure 1 gap this paper is motivated by."""
        from repro.gpu.specs import get_gpu

        assert get_gpu("K20").peak_dp_per_watt > 3 * get_cpu("E5-2670").peak_dp_per_watt


class TestExecutionModel:
    def test_corner_force_scales_with_flops(self):
        m = CPUExecutionModel(get_cpu("E5-2670"))
        t1 = m.corner_force_time(1e9).seconds
        t2 = m.corner_force_time(2e9).seconds
        assert t2 == pytest.approx(2 * t1)

    def test_fewer_cores_slower(self):
        full = CPUExecutionModel(get_cpu("E5-2670"), nprocs=8)
        half = CPUExecutionModel(get_cpu("E5-2670"), nprocs=4)
        assert half.corner_force_time(1e9).seconds == pytest.approx(
            2 * full.corner_force_time(1e9).seconds
        )

    def test_spmv_memory_bound(self):
        m = CPUExecutionModel(get_cpu("E5-2670"))
        t = m.spmv_time(nnz=1e7, nrows=1e5)
        assert t.bound == "memory"

    def test_cg_linear_in_iterations(self):
        m = CPUExecutionModel(get_cpu("E5-2670"))
        t10 = m.cg_time(10, 1e6, 1e4).seconds
        t20 = m.cg_time(20, 1e6, 1e4).seconds
        assert t20 == pytest.approx(2 * t10)

    def test_package_power_levels(self):
        m = CPUExecutionModel(get_cpu("E5-2670"))
        assert m.package_power(1.0) == pytest.approx(95.0)
        assert m.package_power(0.0) == pytest.approx(19.0)
        assert m.dram_power(1.0) == pytest.approx(15.0)

    def test_validation(self):
        m = CPUExecutionModel(get_cpu("E5-2670"))
        with pytest.raises(ValueError):
            m.corner_force_time(-1)
        with pytest.raises(ValueError):
            m.package_power(1.5)
        with pytest.raises(ValueError):
            CPUExecutionModel(get_cpu("E5-2670"), nprocs=9)


class TestRAPL:
    def test_average_power_full_load(self):
        """The Figure 14 measurement: loaded package ~95 W, DRAM ~15 W."""
        rapl = RAPLInterface(get_cpu("E5-2670"))
        rapl.register_phase(0.0, 10.0, 1.0)
        p = rapl.average_power(1.0, 9.0)
        assert p["pkg"] == pytest.approx(95.0, rel=0.01)
        assert p["dram"] == pytest.approx(15.0, rel=0.01)
        assert p["pp0"] == pytest.approx(95.0 * 0.80, rel=0.01)

    def test_idle_power(self):
        rapl = RAPLInterface(get_cpu("E5-2670"))
        p = rapl.average_power(0.0, 5.0)
        assert p["pkg"] == pytest.approx(19.0, rel=0.02)
        assert p["dram"] == pytest.approx(0.5, abs=0.1)

    def test_counters_monotone(self):
        rapl = RAPLInterface(get_cpu("E5-2670"))
        rapl.register_phase(0.0, 1.0, 0.5)
        s1 = rapl.read(0.5)
        s2 = rapl.read(1.5)
        assert s2.pkg_j > s1.pkg_j
        assert s2.dram_j > s1.dram_j

    def test_trace_transitions(self):
        """A load step shows up in the trace (the Figure 14 square wave)."""
        rapl = RAPLInterface(get_cpu("E5-2670"))
        rapl.register_phase(1.0, 2.0, 1.0)
        trace = rapl.power_trace(0.0, 3.0, period_s=0.5)
        pkg = [p for _, p, _, _ in trace]
        assert pkg[0] < 25.0
        assert max(pkg) > 90.0
        assert pkg[-1] < 25.0

    def test_validation(self):
        rapl = RAPLInterface(get_cpu("E5-2670"))
        with pytest.raises(ValueError):
            rapl.register_phase(2.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            rapl.register_phase(0.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            rapl.average_power(1.0, 1.0)


class TestOpenMP:
    def test_speedup_bounded_by_threads(self):
        omp = OpenMPModel(nthreads=6, serial_fraction=0.0, fork_join_overhead_s=0.0)
        assert omp.speedup(1.0) == pytest.approx(6.0)

    def test_amdahl(self):
        omp = OpenMPModel(nthreads=1000, serial_fraction=0.1, fork_join_overhead_s=0.0)
        assert omp.speedup(1.0) < 10.001

    def test_overhead_hurts_small_work(self):
        omp = OpenMPModel(nthreads=8, fork_join_overhead_s=1e-3)
        assert omp.speedup(1e-4) < 1.0

    def test_efficiency(self):
        omp = OpenMPModel(nthreads=4, serial_fraction=0.0, fork_join_overhead_s=0.0)
        assert omp.efficiency(1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenMPModel(nthreads=0)
        with pytest.raises(ValueError):
            OpenMPModel(nthreads=2, serial_fraction=1.0)
        with pytest.raises(ValueError):
            OpenMPModel(nthreads=2).parallel_time(-1.0)
