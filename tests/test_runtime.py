"""Tests for the MPI simulator, DOF groups, energy and hybrid executor."""

import numpy as np
import pytest

from repro.cpu import get_cpu
from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.partition import partition_cartesian
from repro.fem.spaces import H1Space
from repro.gpu import get_gpu
from repro.kernels import FEConfig
from repro.runtime.energy import EnergyAccount, GreenupReport, greenup
from repro.runtime.groups import build_dof_groups, distributed_scatter_add
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.instrumentation import PhaseTimers
from repro.runtime.mpi_sim import CommCostModel, SimulatedComm


class TestSimulatedComm:
    def test_allreduce_min(self):
        comm = SimulatedComm(4)
        assert comm.allreduce_min([0.3, 0.1, 0.5, 0.2]) == 0.1
        assert comm.traffic.reductions == 1

    def test_allreduce_sum(self, rng):
        comm = SimulatedComm(3)
        arrs = [rng.standard_normal(5) for _ in range(3)]
        out = comm.allreduce_sum(arrs)
        assert np.allclose(out, sum(arrs))

    def test_send_recv_fifo(self):
        comm = SimulatedComm(2)
        comm.send(np.array([1.0]), 0, 1)
        comm.send(np.array([2.0]), 0, 1)
        assert comm.recv(0, 1)[0] == 1.0
        assert comm.recv(0, 1)[0] == 2.0

    def test_recv_empty_raises(self):
        comm = SimulatedComm(2)
        with pytest.raises(RuntimeError):
            comm.recv(0, 1)

    def test_traffic_accounting(self):
        comm = SimulatedComm(4)
        comm.send(np.zeros(10), 0, 1)
        assert comm.traffic.messages == 1
        assert comm.traffic.bytes == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedComm(0)
        comm = SimulatedComm(2)
        with pytest.raises(ValueError):
            comm.allreduce_min([1.0])
        with pytest.raises(ValueError):
            comm.send(np.zeros(1), 0, 0)
        with pytest.raises(ValueError):
            comm.allreduce_sum([np.zeros(2), np.zeros(3)])


class TestCommCostModel:
    def test_allreduce_log_scaling(self):
        m = CommCostModel()
        t8 = m.allreduce_time(8, 8)
        t4096 = m.allreduce_time(4096, 8)
        assert t4096 == pytest.approx(4 * t8)  # log2: 12 vs 3 rounds

    def test_single_rank_free(self):
        assert CommCostModel().allreduce_time(1, 8) == 0.0

    def test_p2p_alpha_beta(self):
        m = CommCostModel(alpha_s=1e-6, beta_s_per_byte=1e-9)
        assert m.p2p_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_validation(self):
        m = CommCostModel()
        with pytest.raises(ValueError):
            m.p2p_time(-1)
        with pytest.raises(ValueError):
            m.allreduce_time(0, 8)


class TestDofGroups:
    def setup_method(self):
        self.mesh = cartesian_mesh_2d(4, 2)
        self.space = H1Space(self.mesh, 2)
        self.rank = partition_cartesian(self.mesh, (2, 1))

    def test_masters_partition_dofs(self):
        """Master assignment is a non-overlapping decomposition."""
        groups = build_dof_groups(self.space, self.rank)
        owned = [groups.owned_dofs(r) for r in range(groups.nranks)]
        all_owned = np.concatenate(owned)
        assert np.array_equal(np.sort(all_owned), np.arange(self.space.ndof))

    def test_interface_dofs_shared_by_two(self):
        groups = build_dof_groups(self.space, self.rank)
        g = groups.groups()
        assert (0, 1) in g
        # 2x2-zone blocks sharing one vertical edge: 2*2+1=5 Q2 nodes.
        assert g[(0, 1)].size == 5

    def test_master_is_min_rank(self):
        groups = build_dof_groups(self.space, self.rank)
        for dof, ranks in enumerate(groups.dof_ranks):
            assert groups.master[dof] == min(ranks)

    def test_distributed_assembly_matches_serial(self, rng):
        """The paper's parallel assembly semantics: group-summed local
        contributions equal the serial assembly exactly."""
        zvals = rng.standard_normal((self.mesh.nzones, self.space.ndof_per_zone, 2))
        serial = self.space.scatter_add(zvals)
        distributed = distributed_scatter_add(self.space, self.rank, zvals)
        assert np.allclose(distributed, serial, atol=1e-14)

    def test_single_rank_no_shared(self):
        groups = build_dof_groups(self.space, np.zeros(self.mesh.nzones, dtype=int))
        assert groups.shared_dofs[0].size == 0

    def test_interface_bytes(self):
        groups = build_dof_groups(self.space, self.rank)
        b = groups.interface_bytes_per_rank()
        assert b.shape == (2,)
        assert np.all(b == 5 * 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_dof_groups(self.space, np.zeros(3, dtype=int))
        groups = build_dof_groups(self.space, self.rank)
        with pytest.raises(ValueError):
            groups.owned_dofs(5)


class TestEnergyAccount:
    def test_accumulation(self):
        acc = EnergyAccount("x")
        acc.add("a", 2.0, 100.0)
        acc.add("b", 1.0, 50.0)
        assert acc.time_s == 3.0
        assert acc.energy_j == 250.0
        assert acc.average_power_w == pytest.approx(250.0 / 3.0)

    def test_validation(self):
        acc = EnergyAccount()
        with pytest.raises(ValueError):
            acc.add("a", -1.0, 10.0)


class TestGreenup:
    def test_paper_identity(self):
        """Greenup = Powerup x Speedup, exactly."""
        rep = GreenupReport("Q2-Q1", 10.0, 220.0, 5.0, 330.0)
        assert rep.speedup == pytest.approx(2.0)
        assert rep.powerup == pytest.approx(2 / 3)
        assert rep.greenup == pytest.approx(rep.speedup * rep.powerup)

    def test_energy_saved(self):
        rep = GreenupReport("Q4", 10.0, 220.0, 4.0, 386.0)
        assert rep.energy_saved_fraction == pytest.approx(1 - 1 / rep.greenup)

    def test_from_accounts(self):
        cpu = EnergyAccount("cpu")
        cpu.add("run", 10.0, 220.0)
        hyb = EnergyAccount("hybrid")
        hyb.add("run", 5.0, 330.0)
        rep = greenup(cpu, hyb, "Q2-Q1")
        assert rep.greenup > 1.0

    def test_empty_account_raises(self):
        with pytest.raises(ValueError):
            greenup(EnergyAccount(), EnergyAccount())


class TestHybridExecutor:
    CFG = FEConfig(dim=3, order=2, nzones=8**3)

    def make(self, **kw):
        defaults = dict(nmpi=8, pcg_iterations=25.0)
        defaults.update(kw)
        return HybridExecutor(self.CFG, get_cpu("E5-2670"), get_gpu("K20"), **defaults)

    def test_hybrid_faster_than_cpu(self):
        ex = self.make()
        assert ex.speedup() > 1.0

    def test_greenup_exceeds_one(self):
        """The paper's headline: hybrid is greener despite more power."""
        rep = self.make().greenup_report()
        assert rep.powerup < 1.0
        assert rep.speedup > 1.0
        assert rep.greenup > 1.0

    def test_higher_order_higher_speedup(self):
        """Figure 11's main claim: Q4 gains more than Q2."""
        q2 = HybridExecutor(FEConfig(3, 2, 8**3), get_cpu("E5-2670"), get_gpu("K20"), nmpi=8)
        q4 = HybridExecutor(FEConfig(3, 4, 4**3), get_cpu("E5-2670"), get_gpu("K20"), nmpi=8)
        assert q4.speedup() > q2.speedup()

    def test_corner_force_dominates_cpu_profile(self):
        """Table 1 range: 55-75(+)% corner force on the CPU."""
        f = self.make().cpu_only().step.fractions()
        assert 0.5 <= f["corner_force"] <= 0.85
        assert f["cg"] <= 0.40

    def test_cuda_pcg_only_single_task(self):
        assert not self.make(nmpi=8).use_cuda_pcg
        assert self.make(nmpi=1).use_cuda_pcg

    def test_single_task_pcg_on_gpu(self):
        ex = self.make(nmpi=1)
        rep = ex.hybrid()
        assert rep.step.cg_s > 0
        assert rep.gpu_power_w > get_gpu("K20").active_base_w

    def test_base_implementation_slower_and_hotter(self):
        """Figure 15's base-vs-optimized comparison."""
        opt = self.make(nmpi=1)
        base = self.make(nmpi=1, implementation="base")
        t_opt = opt.hybrid().step.corner_force_s
        t_base = base.hybrid().step.corner_force_s
        assert t_base > 2 * t_opt

    def test_cpu_power_matches_fig14(self):
        rep = self.make().cpu_only()
        # Two packages at 95 + 15 W.
        assert rep.cpu_power_w == pytest.approx(2 * 110.0, rel=0.01)

    def test_hybrid_cpu_power_matches_fig16(self):
        rep = self.make().hybrid()
        # ~75 W package + ~11 W DRAM per package.
        assert rep.cpu_power_w / 2 == pytest.approx(85.0, rel=0.1)

    def test_transfer_time_small_but_positive(self):
        rep = self.make().hybrid()
        assert 0 < rep.step.transfer_s < 0.2 * rep.step.total_s

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(nmpi=0)
        with pytest.raises(ValueError):
            self.make(pcg_iterations=-1)
        with pytest.raises(ValueError):
            HybridExecutor(self.CFG, get_cpu("E5-2670"), None, nmpi=1, use_cuda_pcg=True)
        ex = HybridExecutor(self.CFG, get_cpu("E5-2670"), None, nmpi=8)
        with pytest.raises(ValueError):
            ex.hybrid()


class TestPhaseTimers:
    def test_measure_and_report(self):
        t = PhaseTimers()
        with t.measure("a"):
            sum(range(1000))
        with t.measure("a"):
            pass
        assert t.counts["a"] == 2
        assert t.total("a") > 0
        assert "a" in t.report()
        assert t.fraction("a") == pytest.approx(1.0)
