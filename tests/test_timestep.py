"""Tests for adaptive time-step control."""

import pytest

from repro.hydro.timestep import TimestepController


class TestTimestepController:
    def test_initialize(self):
        c = TimestepController(cfl=0.5)
        assert c.initialize(0.1) == pytest.approx(0.05)

    def test_growth_limited(self):
        c = TimestepController(cfl=0.5, growth=1.02)
        c.initialize(0.1)
        dt = c.propose(10.0, t=0.0, t_final=100.0)
        assert dt == pytest.approx(0.05 * 1.02)

    def test_cfl_limited(self):
        c = TimestepController(cfl=0.5, growth=2.0)
        c.initialize(0.1)
        dt = c.propose(0.05, t=0.0, t_final=100.0)
        assert dt == pytest.approx(0.025)

    def test_lands_on_t_final(self):
        c = TimestepController(cfl=1.0)
        c.initialize(1.0)
        dt = c.propose(1.0, t=9.5, t_final=10.0)
        assert dt == pytest.approx(0.5)

    def test_no_sliver_step(self):
        """When dt slightly undershoots the horizon, split it in half."""
        c = TimestepController(cfl=1.0)
        c.initialize(0.9)
        dt = c.propose(0.9, t=0.0, t_final=1.0)
        assert dt == pytest.approx(0.5)

    def test_reject_halves(self):
        c = TimestepController()
        c.initialize(0.1)
        before = c.dt
        after = c.reject()
        assert after == pytest.approx(before / 2)
        assert c.n_rejected == 1

    def test_reject_below_min_raises(self):
        c = TimestepController(dt_min=1e-3)
        c.initialize(1e-2)
        c.reject()
        c.reject()
        with pytest.raises(RuntimeError):
            c.reject()

    def test_propose_before_init_raises(self):
        with pytest.raises(RuntimeError):
            TimestepController().propose(1.0, 0.0, 1.0)

    def test_zero_remaining(self):
        c = TimestepController()
        c.initialize(1.0)
        assert c.propose(1.0, t=5.0, t_final=5.0) == 0.0

    def test_dt_max_cap(self):
        c = TimestepController(cfl=1.0, dt_max=0.01)
        c.initialize(1.0)
        assert c.propose(100.0, 0.0, 100.0) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimestepController(cfl=0.0)
        with pytest.raises(ValueError):
            TimestepController(growth=0.9)
        with pytest.raises(ValueError):
            TimestepController(shrink=1.5)
        c = TimestepController()
        with pytest.raises(ValueError):
            c.initialize(-1.0)
