"""Tests for the autotuner and the CPU/GPU auto-balancer."""

import numpy as np
import pytest

from repro.gpu import execute_kernel, get_gpu
from repro.kernels import FEConfig
from repro.kernels.k34_custom_gemm import kernel3_cost
from repro.tuning import AutoBalancer, Autotuner, ParamSpace


class TestParamSpace:
    def test_cartesian_product(self):
        space = ParamSpace(a=[1, 2], b=[10, 20, 30])
        assert len(space.candidates()) == 6
        assert space.raw_size == 6

    def test_constraint_elimination(self):
        space = ParamSpace(m=[1, 2, 4, 8]).constrain(lambda c: c["m"] <= 4)
        assert [c["m"] for c in space.candidates()] == [1, 2, 4]
        assert space.eliminated_count() == 1

    def test_paper_shared_memory_constraint(self):
        """The Section 3.2.1 elimination: shared-memory overflow."""
        cfg = FEConfig(dim=3, order=2, nzones=64)
        a_tile = cfg.ndof_kin_zone * cfg.dim * 8
        space = ParamSpace(m=[1, 2, 4, 8, 16, 32, 64, 128])
        space.constrain(lambda c: (c["m"] + 1) * a_tile <= 48 * 1024)
        ms = [c["m"] for c in space.candidates()]
        assert 128 not in ms
        assert 32 in ms

    def test_validation(self):
        with pytest.raises(ValueError):
            ParamSpace()
        with pytest.raises(ValueError):
            ParamSpace(a=[])


class TestAutotuner:
    def test_finds_paper_optimum_for_kernel3(self):
        """Tuning kernel 3 over matrices/block finds 32 (Figure 5)."""
        k20 = get_gpu("K20")
        cfg = FEConfig(dim=3, order=2, nzones=512)
        space = ParamSpace(m=[1, 2, 4, 8, 16, 32, 48])

        def evaluate(cand):
            try:
                return execute_kernel(k20, kernel3_cost(cfg, "v3", cand["m"])).time_s
            except ValueError:
                return float("inf")

        space.constrain(lambda c: np.isfinite(evaluate(c)))
        tuner = Autotuner(evaluate, space, steps_per_period=5, noise_rel=0.02, seed=3)
        result = tuner.tune()
        assert result.best["m"] == 32

    def test_averaging_beats_noise(self):
        """With noise comparable to the gap, 40-step averaging still
        identifies the true optimum."""
        truth = {1: 1.00, 2: 0.93, 4: 0.90}

        def evaluate(cand):
            return truth[cand["m"]]

        tuner = Autotuner(
            evaluate, ParamSpace(m=[1, 2, 4]), steps_per_period=40, noise_rel=0.05, seed=7
        )
        assert tuner.tune().best["m"] == 4

    def test_steps_accounting(self):
        tuner = Autotuner(lambda c: 1.0, ParamSpace(m=[1, 2, 3]), steps_per_period=40)
        res = tuner.tune()
        assert res.steps_used == 120
        assert len(res.samples) == 3

    def test_ranking_sorted(self):
        tuner = Autotuner(lambda c: float(c["m"]), ParamSpace(m=[3, 1, 2]), steps_per_period=1)
        ranked = tuner.tune().ranking()
        assert [c["m"] for c, _ in ranked] == [1, 2, 3]

    def test_all_eliminated_raises(self):
        space = ParamSpace(m=[1]).constrain(lambda c: False)
        with pytest.raises(ValueError):
            Autotuner(lambda c: 1.0, space).tune()

    def test_invalid_evaluation_raises(self):
        tuner = Autotuner(lambda c: -1.0, ParamSpace(m=[1]))
        with pytest.raises(ValueError):
            tuner.tune()

    def test_validation(self):
        with pytest.raises(ValueError):
            Autotuner(lambda c: 1.0, ParamSpace(m=[1]), steps_per_period=0)
        with pytest.raises(ValueError):
            Autotuner(lambda c: 1.0, ParamSpace(m=[1]), noise_rel=-0.1)


class TestAutoBalancer:
    @staticmethod
    def linear_times(s_gpu, s_cpu, overhead=0.0):
        gpu = lambda share: share / s_gpu + overhead
        cpu = lambda share: share / s_cpu
        return gpu, cpu

    def test_converges_to_throughput_ratio(self):
        """GPU 3x faster than CPU -> 75% of zones on GPU (Table 5)."""
        gpu, cpu = self.linear_times(3.0, 1.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.0).balance()
        assert res.converged
        assert res.ratio == pytest.approx(0.75, abs=0.02)

    def test_paper_convergence_period_count(self):
        """Converges in on the order of a dozen periods (Table 5: 12-14)."""
        gpu, cpu = self.linear_times(3.0, 1.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.01, seed=5).balance(initial_ratio=0.5)
        assert res.converged
        assert 3 <= res.periods <= 25

    def test_slower_gpu_gets_less(self):
        gpu, cpu = self.linear_times(1.0, 2.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.0).balance()
        assert res.ratio == pytest.approx(1 / 3, abs=0.02)

    def test_history_recorded(self):
        gpu, cpu = self.linear_times(3.0, 1.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.0).balance()
        assert len(res.history) == res.periods
        ratios = [h[0] for h in res.history]
        assert ratios[0] == 0.5

    def test_max_periods_cap(self):
        # Pathological oscillating measurement never converges.
        rng = np.random.default_rng(0)
        gpu = lambda share: share * (1.0 + rng.uniform(-0.5, 0.5))
        cpu = lambda share: share
        res = AutoBalancer(gpu, cpu, tol=1e-6, noise_rel=0.0).balance(max_periods=10)
        assert res.periods == 10

    def test_validation(self):
        gpu, cpu = self.linear_times(2.0, 1.0)
        with pytest.raises(ValueError):
            AutoBalancer(gpu, cpu, damping=0.0)
        with pytest.raises(ValueError):
            AutoBalancer(gpu, cpu, tol=0.0)
        with pytest.raises(ValueError):
            AutoBalancer(gpu, cpu).balance(initial_ratio=1.0)

    def test_invalid_time_raises(self):
        bal = AutoBalancer(lambda s: float("nan"), lambda s: 1.0)
        with pytest.raises(ValueError):
            bal.balance()
