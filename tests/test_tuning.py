"""Tests for the autotuner and the CPU/GPU auto-balancer."""

import numpy as np
import pytest

from repro.gpu import execute_kernel, get_gpu
from repro.kernels import FEConfig
from repro.kernels.k34_custom_gemm import kernel3_cost
from repro.tuning import AutoBalancer, Autotuner, ParamSpace


class TestParamSpace:
    def test_cartesian_product(self):
        space = ParamSpace(a=[1, 2], b=[10, 20, 30])
        assert len(space.candidates()) == 6
        assert space.raw_size == 6

    def test_constraint_elimination(self):
        space = ParamSpace(m=[1, 2, 4, 8]).constrain(lambda c: c["m"] <= 4)
        assert [c["m"] for c in space.candidates()] == [1, 2, 4]
        assert space.eliminated_count() == 1

    def test_paper_shared_memory_constraint(self):
        """The Section 3.2.1 elimination: shared-memory overflow."""
        cfg = FEConfig(dim=3, order=2, nzones=64)
        a_tile = cfg.ndof_kin_zone * cfg.dim * 8
        space = ParamSpace(m=[1, 2, 4, 8, 16, 32, 64, 128])
        space.constrain(lambda c: (c["m"] + 1) * a_tile <= 48 * 1024)
        ms = [c["m"] for c in space.candidates()]
        assert 128 not in ms
        assert 32 in ms

    def test_validation(self):
        with pytest.raises(ValueError):
            ParamSpace()
        with pytest.raises(ValueError):
            ParamSpace(a=[])


class TestAutotuner:
    def test_finds_paper_optimum_for_kernel3(self):
        """Tuning kernel 3 over matrices/block finds 32 (Figure 5)."""
        k20 = get_gpu("K20")
        cfg = FEConfig(dim=3, order=2, nzones=512)
        space = ParamSpace(m=[1, 2, 4, 8, 16, 32, 48])

        def evaluate(cand):
            try:
                return execute_kernel(k20, kernel3_cost(cfg, "v3", cand["m"])).time_s
            except ValueError:
                return float("inf")

        space.constrain(lambda c: np.isfinite(evaluate(c)))
        tuner = Autotuner(evaluate, space, steps_per_period=5, noise_rel=0.02, seed=3)
        result = tuner.tune()
        assert result.best["m"] == 32

    def test_averaging_beats_noise(self):
        """With noise comparable to the gap, 40-step averaging still
        identifies the true optimum."""
        truth = {1: 1.00, 2: 0.93, 4: 0.90}

        def evaluate(cand):
            return truth[cand["m"]]

        tuner = Autotuner(
            evaluate, ParamSpace(m=[1, 2, 4]), steps_per_period=40, noise_rel=0.05, seed=7
        )
        assert tuner.tune().best["m"] == 4

    def test_steps_accounting(self):
        tuner = Autotuner(lambda c: 1.0, ParamSpace(m=[1, 2, 3]), steps_per_period=40)
        res = tuner.tune()
        assert res.steps_used == 120
        assert len(res.samples) == 3

    def test_ranking_sorted(self):
        tuner = Autotuner(lambda c: float(c["m"]), ParamSpace(m=[3, 1, 2]), steps_per_period=1)
        ranked = tuner.tune().ranking()
        assert [c["m"] for c, _ in ranked] == [1, 2, 3]

    def test_all_eliminated_raises(self):
        space = ParamSpace(m=[1]).constrain(lambda c: False)
        with pytest.raises(ValueError):
            Autotuner(lambda c: 1.0, space).tune()

    def test_invalid_evaluation_raises(self):
        tuner = Autotuner(lambda c: -1.0, ParamSpace(m=[1]))
        with pytest.raises(ValueError):
            tuner.tune()

    def test_validation(self):
        with pytest.raises(ValueError):
            Autotuner(lambda c: 1.0, ParamSpace(m=[1]), steps_per_period=0)
        with pytest.raises(ValueError):
            Autotuner(lambda c: 1.0, ParamSpace(m=[1]), noise_rel=-0.1)


class TestAutoBalancer:
    @staticmethod
    def linear_times(s_gpu, s_cpu, overhead=0.0):
        gpu = lambda share: share / s_gpu + overhead
        cpu = lambda share: share / s_cpu
        return gpu, cpu

    def test_converges_to_throughput_ratio(self):
        """GPU 3x faster than CPU -> 75% of zones on GPU (Table 5)."""
        gpu, cpu = self.linear_times(3.0, 1.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.0).balance()
        assert res.converged
        assert res.ratio == pytest.approx(0.75, abs=0.02)

    def test_paper_convergence_period_count(self):
        """Converges in on the order of a dozen periods (Table 5: 12-14)."""
        gpu, cpu = self.linear_times(3.0, 1.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.01, seed=5).balance(initial_ratio=0.5)
        assert res.converged
        assert 3 <= res.periods <= 25

    def test_slower_gpu_gets_less(self):
        gpu, cpu = self.linear_times(1.0, 2.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.0).balance()
        assert res.ratio == pytest.approx(1 / 3, abs=0.02)

    def test_history_recorded(self):
        gpu, cpu = self.linear_times(3.0, 1.0)
        res = AutoBalancer(gpu, cpu, noise_rel=0.0).balance()
        assert len(res.history) == res.periods
        ratios = [h[0] for h in res.history]
        assert ratios[0] == 0.5

    def test_max_periods_cap(self):
        # Pathological oscillating measurement never converges.
        rng = np.random.default_rng(0)
        gpu = lambda share: share * (1.0 + rng.uniform(-0.5, 0.5))
        cpu = lambda share: share
        res = AutoBalancer(gpu, cpu, tol=1e-6, noise_rel=0.0).balance(max_periods=10)
        assert res.periods == 10

    def test_validation(self):
        gpu, cpu = self.linear_times(2.0, 1.0)
        with pytest.raises(ValueError):
            AutoBalancer(gpu, cpu, damping=0.0)
        with pytest.raises(ValueError):
            AutoBalancer(gpu, cpu, tol=0.0)
        with pytest.raises(ValueError):
            AutoBalancer(gpu, cpu).balance(initial_ratio=1.0)

    def test_invalid_time_raises(self):
        bal = AutoBalancer(lambda s: float("nan"), lambda s: 1.0)
        with pytest.raises(ValueError):
            bal.balance()


# -- The unified search engine (repro.tuning.search) -------------------------

from repro.backends.hybrid import HybridBackend
from repro.config import _TUNING_OBJECTIVES, _TUNING_STRATEGIES
from repro.errors import ConfigError, EmptyParamSpaceError, ReproError
from repro.gpu.device import SimulatedGPU
from repro.sched import hybrid_param_space
from repro.tuning import (
    OBJECTIVES,
    STRATEGIES,
    Measurement,
    TuningCache,
    get_objective,
    make_strategy,
    run_search,
)


class TestParamSpaceRestrictions:
    """Edge cases of the declarative restriction idiom."""

    def test_smoke_full_elimination_raises_typed_error(self):
        space = ParamSpace(m=[1, 2, 4]).constrain(lambda c: False)
        with pytest.raises(EmptyParamSpaceError, match="eliminated all 3"):
            space.feasible()
        # The typed error slots into both hierarchies: a declaration
        # mistake (ConfigError/ValueError) inside the unified ReproError.
        err = EmptyParamSpaceError("x")
        assert isinstance(err, ConfigError)
        assert isinstance(err, ValueError)
        assert isinstance(err, ReproError)

    def test_strategies_raise_on_empty_space(self):
        space = ParamSpace(m=[1, 2]).constrain(lambda c: False)
        for name in STRATEGIES:
            with pytest.raises(EmptyParamSpaceError):
                make_strategy(name).reset(space)

    def test_constraint_order_invariance(self):
        """Restrictions are conjunctive predicates: any ordering of the
        same set yields the same feasible set."""
        preds = [
            lambda c: c["m"] * c["n"] <= 32,
            lambda c: c["m"] >= 2,
            lambda c: c["n"] != 8,
        ]
        ranges = dict(m=[1, 2, 4, 8, 16], n=[1, 2, 4, 8])
        base = ParamSpace(restrictions=preds, **ranges).candidates()
        assert base  # non-degenerate fixture
        for order in ([2, 0, 1], [1, 2, 0], [2, 1, 0]):
            shuffled = ParamSpace(
                restrictions=[preds[i] for i in order], **ranges
            )
            assert shuffled.candidates() == base

    def test_restrictions_kwarg_matches_constrain(self):
        pred = lambda c: c["m"] <= 4
        declared = ParamSpace(restrictions=(pred,), m=[1, 2, 4, 8])
        chained = ParamSpace(m=[1, 2, 4, 8]).constrain(pred)
        assert declared.candidates() == chained.candidates()
        assert declared.eliminated_count() == chained.eliminated_count() == 1

    def test_constrain_invalidates_enumeration_cache(self):
        space = ParamSpace(m=[1, 2, 4, 8])
        assert len(space.candidates()) == 4
        space.constrain(lambda c: c["m"] <= 2)
        assert len(space.candidates()) == 2


class TestSearchStrategies:
    def test_smoke_registries_match_runconfig_vocabulary(self):
        """RunConfig validates against the same registries the engine
        dispatches on — the vocabularies can never drift apart."""
        assert _TUNING_OBJECTIVES == tuple(OBJECTIVES)
        assert _TUNING_STRATEGIES == tuple(STRATEGIES)

    def test_unknown_names_raise_config_error(self):
        with pytest.raises(ConfigError, match="unknown tuning objective"):
            get_objective("watts")
        with pytest.raises(ConfigError, match="unknown tuning strategy"):
            make_strategy("annealing")

    def test_measurement_objectives(self):
        m = Measurement(time_s=2.0, energy_j=3.0)
        assert OBJECTIVES["time"].score(m) == 2.0
        assert OBJECTIVES["energy"].score(m) == 3.0
        assert OBJECTIVES["edp"].score(m) == 6.0

    def test_smoke_exhaustive_visits_all_in_declaration_order(self):
        space = ParamSpace(m=[3, 1, 2])
        seen = []
        result = run_search(
            space,
            lambda c: (seen.append(c["m"]), Measurement(c["m"], 1.0))[1],
            strategy="exhaustive",
        )
        assert seen == [3, 1, 2]
        assert result.best == {"m": 1}
        assert result.evaluations == result.feasible_points == 3

    @staticmethod
    def _bowl(cand):
        """Convex synthetic landscape with optimum at (m=8, n=4)."""
        t = 1.0 + (cand["m"] - 8) ** 2 / 64 + (cand["n"] - 4) ** 2 / 16
        return Measurement(time_s=t, energy_j=2 * t)

    def _space(self):
        return ParamSpace(m=[1, 2, 4, 8, 16], n=[1, 2, 4, 8])

    def test_smoke_random_deterministic_under_seed(self):
        runs = [
            run_search(self._space(), self._bowl, strategy="random", seed=11)
            for _ in range(2)
        ]
        assert runs[0].best == runs[1].best
        assert runs[0].score == runs[1].score
        assert runs[0].evaluations == runs[1].evaluations
        # Default budget: half the feasible points, rounded up.
        assert runs[0].evaluations == 10

    def test_smoke_local_deterministic_under_seed(self):
        runs = [
            run_search(self._space(), self._bowl, strategy="local", seed=5)
            for _ in range(2)
        ]
        assert runs[0].best == runs[1].best == {"m": 8, "n": 4}
        assert runs[0].evaluations == runs[1].evaluations

    def test_local_beats_budget_on_convex_landscape(self):
        result = run_search(self._space(), self._bowl, strategy="local", seed=0)
        assert result.best == {"m": 8, "n": 4}
        assert result.evaluations < result.feasible_points


class TestObjectiveDivergence:
    """Acceptance: on the simulated power model, energy/edp pick a
    different winner than time for kernel 3, and the winners persist
    side by side in one TuningCache under per-objective keys."""

    spec = get_gpu("K20")
    cfg = FEConfig(dim=2, order=2, nzones=16)

    def _measure(self, cand):
        phase = SimulatedGPU(self.spec).run_phase(
            [kernel3_cost(self.cfg, "v3",
                          matrices_per_block=cand["matrices_per_block"])]
        )
        return Measurement(time_s=phase.time_s, energy_j=phase.energy_j)

    def _space(self):
        def launchable(cand):
            try:
                execute_kernel(
                    self.spec,
                    kernel3_cost(self.cfg, "v3",
                                 matrices_per_block=cand["matrices_per_block"]),
                )
                return True
            except ValueError:
                return False

        return ParamSpace(restrictions=(launchable,),
                          matrices_per_block=(1, 2, 4, 8, 16, 32, 64, 128))

    def test_smoke_energy_and_edp_diverge_from_time(self, tmp_path):
        """Racing-to-idle on the modelled K20: the throughput-optimal
        tiling (4 matrices/block) is not the energy-optimal one (16)."""
        winners = {}
        for objective in ("time", "energy", "edp"):
            winners[objective] = run_search(
                self._space(), self._measure,
                objective=objective, strategy="exhaustive",
            ).best
        assert winners["time"] == {"matrices_per_block": 4}
        assert winners["energy"] == {"matrices_per_block": 16}
        assert winners["edp"] == {"matrices_per_block": 16}

        # Both winners persist side by side and warm-start their own
        # objective on a rerun (tune_fn must not be called again).
        cache_path = tmp_path / "tuning.json"
        cache = TuningCache(cache_path)
        for objective, best in winners.items():
            cache.store(self.spec, self.cfg, "kernel3", best,
                        backend="hybrid", objective=objective)
        reloaded = TuningCache(cache_path)
        for objective, best in winners.items():
            assert reloaded.lookup(self.spec, self.cfg, "kernel3",
                                   backend="hybrid", objective=objective) == best

        def refuse_to_tune():
            raise AssertionError("warm start must not re-tune")

        for objective, best in winners.items():
            assert reloaded.get_or_tune(self.spec, self.cfg, "kernel3",
                                        refuse_to_tune, backend="hybrid",
                                        objective=objective) == best

    def test_smoke_cache_never_warm_starts_across_objectives(self):
        """Regression: an energy winner must never serve a time (or
        edp) lookup — each objective has its own key namespace."""
        cache = TuningCache()
        cache.store(self.spec, self.cfg, "kernel3", {"matrices_per_block": 16},
                    backend="hybrid", objective="energy")
        assert cache.lookup(self.spec, self.cfg, "kernel3",
                            backend="hybrid") is None
        assert cache.lookup(self.spec, self.cfg, "kernel3",
                            backend="hybrid", objective="time") is None
        assert cache.lookup(self.spec, self.cfg, "kernel3",
                            backend="hybrid", objective="edp") is None

    def test_time_objective_keeps_legacy_key_shape(self):
        """objective="time" is the historical default: its entries live
        under the pre-objective key, so old caches stay warm."""
        cache = TuningCache()
        cache.store(self.spec, self.cfg, "kernel3", {"matrices_per_block": 4},
                    backend="hybrid", objective="time")
        assert cache.lookup(self.spec, self.cfg, "kernel3",
                            backend="hybrid") == {"matrices_per_block": 4}


class TestJointSpaceAcceptance:
    """Acceptance: cheap strategies find the exhaustive winner on the
    paper's joint kernel/runtime space within half the evaluation
    budget."""

    spec = get_gpu("K20")
    cfg = FEConfig(dim=2, order=2, nzones=256)

    def _search(self, objective, strategy, seed=0):
        harness = HybridBackend.for_pricing(self.cfg, device="K20")
        return run_search(hybrid_param_space(self.cfg, self.spec),
                          harness.measure_candidate,
                          objective=objective, strategy=strategy, seed=seed)

    def test_smoke_local_finds_exhaustive_winner_for_every_objective(self):
        for objective in ("time", "energy", "edp"):
            exhaustive = self._search(objective, "exhaustive")
            local = self._search(objective, "local", seed=1)
            assert local.best == exhaustive.best, objective
            assert local.score == pytest.approx(exhaustive.score)
            assert local.evaluated_fraction <= 0.5
            assert exhaustive.evaluations == exhaustive.feasible_points

    def test_random_matches_exhaustive_optimum_within_half_budget(self):
        """The seeded half-budget subsample attains the exhaustive
        optimum score (the joint space has exact ties at the optimum,
        so the winning dict may be a tied equal — the score may not)."""
        for objective in ("time", "energy", "edp"):
            exhaustive = self._search(objective, "exhaustive")
            random = self._search(objective, "random", seed=18)
            assert random.score == pytest.approx(exhaustive.score, rel=1e-12)
            assert random.evaluated_fraction <= 0.5
        assert self._search("time", "random", seed=18).best == \
            self._search("time", "exhaustive").best
