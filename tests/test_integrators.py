"""Tests for the time integrator family.

The headline: RK2Avg conserves total energy to roundoff (the Table 6
mechanism); forward Euler drifts at O(dt); classic RK4 drifts at
O(dt^4) — demonstrating the conservation is a property of the paired
update, not of the spatial discretization.
"""

import numpy as np
import pytest

from repro import LagrangianHydroSolver, SedovProblem, SolverOptions
from repro.hydro.integrator import make_integrator


def run_with(integrator: str, cfl=0.25, t_final=0.05, zones=4):
    p = SedovProblem(dim=2, order=2, zones_per_dim=zones)
    s = LagrangianHydroSolver(p, SolverOptions(integrator=integrator, cfl=cfl))
    res = s.run(t_final=t_final)
    rel = abs(res.energy_change) / res.energy_history[0].total
    return s, res, rel


class TestConservationHierarchy:
    def test_rk2avg_machine_precision(self):
        _, res, rel = run_with("rk2avg")
        assert res.reached_t_final
        assert rel < 1e-12

    def test_euler_drifts_first_order(self):
        _, res, rel = run_with("euler")
        assert res.reached_t_final
        assert rel > 1e-6  # visibly non-conservative

    def test_rk4_between(self):
        _, res4, rel4 = run_with("rk4")
        _, _, rel_euler = run_with("euler")
        _, _, rel_rk2 = run_with("rk2avg")
        assert res4.reached_t_final
        assert rel_rk2 < rel4 < rel_euler

    def test_euler_drift_shrinks_with_dt(self):
        """First-order convergence of the Euler energy error."""
        _, _, rel_coarse = run_with("euler", cfl=0.4)
        _, _, rel_fine = run_with("euler", cfl=0.1)
        assert rel_fine < rel_coarse

    def test_all_produce_similar_physics(self):
        """The integrators agree on the flow itself to truncation level."""
        s2, _, _ = run_with("rk2avg", cfl=0.1)
        s4, _, _ = run_with("rk4", cfl=0.1)
        assert np.allclose(s2.state.x, s4.state.x, atol=5e-3)
        assert np.allclose(s2.state.v, s4.state.v, atol=5e-2)


class TestFactory:
    def test_unknown_name(self):
        p = SedovProblem(dim=2, order=1, zones_per_dim=2)
        with pytest.raises(ValueError):
            LagrangianHydroSolver(p, SolverOptions(integrator="leapfrog"))

    def test_rk4_costs_more_force_evals(self):
        _, res2, _ = run_with("rk2avg", t_final=0.02)
        _, res4, _ = run_with("rk4", t_final=0.02)
        evals2 = res2.workload.force_evals / max(res2.steps, 1)
        evals4 = res4.workload.force_evals / max(res4.steps, 1)
        assert evals4 > evals2

    def test_euler_single_eval_per_step(self):
        _, res, _ = run_with("euler", t_final=0.02)
        # initialize_dt adds one; each step adds exactly one.
        assert res.workload.force_evals == res.steps + 1
