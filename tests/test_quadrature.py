"""Tests for tensor-product quadrature."""

import numpy as np
import pytest

from repro.fem.quadrature import tensor_quadrature


class TestTensorQuadrature:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_weights_sum_to_volume(self, dim):
        q = tensor_quadrature(dim, 3)
        assert q.weights.sum() == pytest.approx(1.0, abs=1e-13)
        assert q.nqp == 3**dim
        assert q.dim == dim

    def test_paper_shapes(self):
        """2k points per dim: Q2 -> 64 points, Q4 -> 512 points in 3D."""
        assert tensor_quadrature(3, 4).nqp == 64
        assert tensor_quadrature(3, 8).nqp == 512

    @pytest.mark.parametrize("dim", [2, 3])
    def test_exact_multilinear_integrals(self, dim):
        q = tensor_quadrature(dim, 2)
        # integral of prod x_d over unit cube = (1/2)^dim
        prod = np.prod(q.points, axis=1)
        assert np.sum(q.weights * prod) == pytest.approx(0.5**dim, rel=1e-13)

    def test_exact_high_degree(self):
        q = tensor_quadrature(2, 4)
        # 4-pt Gauss exact through degree 7 per dim
        f = q.points[:, 0] ** 7 * q.points[:, 1] ** 6
        assert np.sum(q.weights * f) == pytest.approx((1 / 8) * (1 / 7), rel=1e-12)

    def test_first_coordinate_fastest(self):
        q = tensor_quadrature(2, 3)
        # x repeats the 1D rule, y is blocked
        assert np.allclose(q.points[:3, 1], q.points[0, 1])
        assert np.allclose(q.points[:3, 0], q.points_1d)

    def test_3d_ordering(self):
        q = tensor_quadrature(3, 2)
        assert np.allclose(q.points[:2, 0], q.points_1d)
        assert np.allclose(q.points[:4, 2], q.points[0, 2])

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            tensor_quadrature(4, 2)

    def test_points_in_unit_cube(self):
        q = tensor_quadrature(3, 5)
        assert np.all(q.points > 0) and np.all(q.points < 1)
        assert np.all(q.weights > 0)
