"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "sedov"])
        assert args.problem == "sedov"
        assert args.order == 2
        assert args.integrator == "rk2avg"

    def test_bad_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "kelvin-helmholtz"])


class TestRun:
    def test_sedov_run(self, capsys):
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sedov" in out
        assert "change" in out

    def test_run_with_outputs(self, tmp_path, capsys):
        vtk = tmp_path / "snap.vtk"
        chk = tmp_path / "state.npz"
        rc = main([
            "run", "sedov", "--zones", "3", "--t-final", "0.01",
            "--vtk", str(vtk), "--checkpoint", str(chk),
        ])
        assert rc == 0
        assert vtk.exists()
        assert chk.exists()

    def test_run_restore(self, tmp_path, capsys):
        chk = tmp_path / "state.npz"
        main(["run", "sedov", "--zones", "3", "--t-final", "0.01",
              "--checkpoint", str(chk)])
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.02",
                   "--restore", str(chk)])
        assert rc == 0

    def test_distributed_run(self, capsys):
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.01",
                   "--ranks", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated MPI traffic" in out

    def test_euler_integrator(self, capsys):
        rc = main(["run", "taylor-green", "--zones", "2", "--order", "2",
                   "--t-final", "0.01", "--integrator", "euler"])
        assert rc == 0

    def test_all_problems_construct(self, capsys):
        for prob in ("noh", "saltzman", "triple-pt"):
            rc = main(["run", prob, "--zones", "2", "--order", "1",
                       "--t-final", "0.002", "--max-steps", "3"])
            assert rc == 0, prob


class TestInfoModelTune:
    def test_info_devices(self, capsys):
        assert main(["info", "devices"]) == 0
        out = capsys.readouterr().out
        assert "K20" in out and "E5-2670" in out

    def test_info_kernels(self, capsys):
        assert main(["info", "kernels"]) == 0
        out = capsys.readouterr().out
        assert "kernel_CalcAjugate_det" in out
        assert "Az B^T" in out

    def test_model_greenup(self, capsys):
        assert main(["model", "greenup", "--zones", "8"]) == 0
        out = capsys.readouterr().out
        assert "greenup" in out

    def test_model_profile(self, capsys):
        assert main(["model", "profile", "--zones", "8"]) == 0
        assert "Q2-Q1" in capsys.readouterr().out

    def test_model_scaling(self, capsys):
        assert main(["model", "scaling"]) == 0
        out = capsys.readouterr().out
        assert "4096 nodes" in out

    def test_tune_kernel3_finds_32(self, capsys, tmp_path):
        rc = main(["tune", "kernel3", "--zones", "8",
                   "--cache", str(tmp_path / "c.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best matrices_per_block = 32" in out

    def test_tune_kernel7(self, capsys):
        assert main(["tune", "kernel7", "--zones", "8"]) == 0
        assert "block_cols" in capsys.readouterr().out

    def test_tune_uses_cache_second_time(self, capsys, tmp_path):
        cache = str(tmp_path / "c.json")
        main(["tune", "kernel5", "--zones", "8", "--cache", cache])
        import json, pathlib

        store = json.loads(pathlib.Path(cache).read_text())
        assert len(store) == 1
        assert main(["tune", "kernel5", "--zones", "8", "--cache", cache]) == 0
