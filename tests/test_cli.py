"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "sedov"])
        assert args.problem == "sedov"
        assert args.order == 2
        assert args.integrator == "rk2avg"

    def test_bad_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "kelvin-helmholtz"])


class TestRun:
    def test_sedov_run(self, capsys):
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sedov" in out
        assert "change" in out

    def test_run_with_outputs(self, tmp_path, capsys):
        vtk = tmp_path / "snap.vtk"
        chk = tmp_path / "state.npz"
        rc = main([
            "run", "sedov", "--zones", "3", "--t-final", "0.01",
            "--vtk", str(vtk), "--checkpoint", str(chk),
        ])
        assert rc == 0
        assert vtk.exists()
        assert chk.exists()

    def test_run_restore(self, tmp_path, capsys):
        chk = tmp_path / "state.npz"
        main(["run", "sedov", "--zones", "3", "--t-final", "0.01",
              "--checkpoint", str(chk)])
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.02",
                   "--restore", str(chk)])
        assert rc == 0

    def test_distributed_run(self, capsys):
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.01",
                   "--ranks", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated MPI traffic" in out

    def test_euler_integrator(self, capsys):
        rc = main(["run", "taylor-green", "--zones", "2", "--order", "2",
                   "--t-final", "0.01", "--integrator", "euler"])
        assert rc == 0

    def test_all_problems_construct(self, capsys):
        for prob in ("noh", "saltzman", "triple-pt"):
            rc = main(["run", prob, "--zones", "2", "--order", "1",
                       "--t-final", "0.002", "--max-steps", "3"])
            assert rc == 0, prob


class TestInfoModelTune:
    def test_info_devices(self, capsys):
        assert main(["info", "devices"]) == 0
        out = capsys.readouterr().out
        assert "K20" in out and "E5-2670" in out

    def test_info_kernels(self, capsys):
        assert main(["info", "kernels"]) == 0
        out = capsys.readouterr().out
        assert "kernel_CalcAjugate_det" in out
        assert "Az B^T" in out

    def test_model_greenup(self, capsys):
        assert main(["model", "greenup", "--zones", "8"]) == 0
        out = capsys.readouterr().out
        assert "greenup" in out

    def test_model_profile(self, capsys):
        assert main(["model", "profile", "--zones", "8"]) == 0
        assert "Q2-Q1" in capsys.readouterr().out

    def test_model_scaling(self, capsys):
        assert main(["model", "scaling"]) == 0
        out = capsys.readouterr().out
        assert "4096 nodes" in out

    def test_tune_kernel3_finds_32(self, capsys, tmp_path):
        rc = main(["tune", "kernel3", "--zones", "8",
                   "--cache", str(tmp_path / "c.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best matrices_per_block = 32" in out

    def test_tune_kernel7(self, capsys):
        assert main(["tune", "kernel7", "--zones", "8"]) == 0
        assert "block_cols" in capsys.readouterr().out

    def test_tune_uses_cache_second_time(self, capsys, tmp_path):
        cache = str(tmp_path / "c.json")
        main(["tune", "kernel5", "--zones", "8", "--cache", cache])
        import json, pathlib

        store = json.loads(pathlib.Path(cache).read_text())
        assert len(store) == 1
        assert main(["tune", "kernel5", "--zones", "8", "--cache", cache]) == 0

    def test_tune_campaign_prints_objective_per_winner(self, capsys, tmp_path):
        """Satellite: every winner row names the objective it was
        scored under, and the report logs the evaluation budget."""
        rc = main(["tune", "campaign", "--dim", "2", "--orders", "2",
                   "--zones", "8", "--objective", "time",
                   "--objective", "energy",
                   "--cache", str(tmp_path / "c.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "objective" in out
        assert "winner scored under objective 'time'" in out
        assert "winner scored under objective 'energy'" in out
        assert "feasible points" in out

    def test_tune_campaign_warm_starts_matching_objective_only(
            self, tmp_path, capsys):
        """A campaign cache warm-starts `repro run` for its own
        objective; a different objective re-tunes in band."""
        cache = str(tmp_path / "c.json")
        assert main(["tune", "campaign", "--dim", "2", "--orders", "2",
                     "--zones", "4", "--objective", "energy",
                     "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["run", "sedov", "--zones", "4", "--t-final", "0.01",
                     "--backend", "hybrid", "--tuning-cache", cache,
                     "--tuning-objective", "energy"]) == 0
        assert "warm-started from cache" in capsys.readouterr().out
        assert main(["run", "sedov", "--zones", "4", "--t-final", "0.01",
                     "--backend", "hybrid", "--tuning-cache", cache]) == 0
        assert "warm-started" not in capsys.readouterr().out


class TestErrorPaths:
    """Every misuse exits nonzero with a one-line actionable message —
    never a traceback."""

    def test_unknown_problem_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "rayleigh-taylor"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Traceback" not in err

    def test_invalid_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "sedov", "--backend", "tpu"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Traceback" not in err

    def test_workers_with_hybrid_backend_misuse(self, capsys):
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.01",
                   "--workers", "4", "--backend", "hybrid"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "workers=4 conflicts with backend='hybrid'" in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_corrupt_tuning_cache_lenient_runs(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json !!!")
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.01",
                   "--backend", "hybrid", "--tuning-cache", str(cache)])
        assert rc == 0

    def test_corrupt_tuning_cache_strict_exits_3(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json !!!")
        rc = main(["run", "sedov", "--zones", "3", "--t-final", "0.01",
                   "--backend", "hybrid", "--tuning-cache", str(cache),
                   "--strict-tuning-cache"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "re-run without --strict-tuning-cache" in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err


class TestServeSubmit:
    def test_submit_then_serve(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        rc = main(["submit", "sedov", "--journal", journal,
                   "--zones", "3", "--t-final", "0.02",
                   "--job-id", "cli-job-1"])
        assert rc == 0
        assert "journaled cli-job-1" in capsys.readouterr().out

        rc = main(["serve", "--journal", journal, "--workers", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered 1 pending jobs" in out
        assert "1/1 jobs completed" in out

    def test_serve_again_reuses_result_store(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        main(["submit", "sedov", "--journal", journal,
              "--zones", "3", "--t-final", "0.02", "--job-id", "j1"])
        main(["serve", "--journal", journal, "--workers", "0"])
        capsys.readouterr()
        # Re-submitting the same spec under a new id hits the store.
        main(["submit", "sedov", "--journal", journal,
              "--zones", "3", "--t-final", "0.02", "--job-id", "j2"])
        rc = main(["serve", "--journal", journal, "--workers", "0"])
        assert rc == 0
        assert "1 cached" in capsys.readouterr().out

    def test_submit_invalid_spec_exits_2(self, tmp_path, capsys):
        rc = main(["submit", "sedov", "--journal",
                   str(tmp_path / "j.jsonl"), "--deadline", "-1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "deadline_s" in err
        assert "Traceback" not in err

    def test_serve_corrupt_journal_strict_exits_3(self, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        main(["submit", "sedov", "--journal", str(journal),
              "--zones", "3", "--t-final", "0.02", "--job-id", "j1"])
        capsys.readouterr()
        with journal.open("a") as fh:
            fh.write('{"torn record, no hash\n')
        rc = main(["serve", "--journal", str(journal), "--workers", "0",
                   "--strict-journal"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "re-run without --strict-journal" in err
        assert "Traceback" not in err

    def test_serve_corrupt_journal_lenient_runs(self, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        main(["submit", "sedov", "--journal", str(journal),
              "--zones", "3", "--t-final", "0.02", "--job-id", "j1"])
        capsys.readouterr()
        with journal.open("a") as fh:
            fh.write('{"torn record, no hash\n')
        with pytest.warns(UserWarning, match="corrupt"):
            rc = main(["serve", "--journal", str(journal), "--workers", "0"])
        assert rc == 0

    def test_serve_manifest_export(self, tmp_path, capsys):
        import json

        journal = str(tmp_path / "journal.jsonl")
        manifest = tmp_path / "fleet.json"
        main(["submit", "sedov", "--journal", journal,
              "--zones", "3", "--t-final", "0.02", "--job-id", "j1"])
        rc = main(["serve", "--journal", journal, "--workers", "0",
                   "--manifest", str(manifest)])
        assert rc == 0
        data = json.loads(manifest.read_text())
        assert data["jobs"]["completed"] == 1
        assert "throughput_jobs_per_s" in data
        assert "latency_s" in data
