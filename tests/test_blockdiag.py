"""Tests for the block-diagonal operator."""

import numpy as np
import pytest

from repro.linalg.blockdiag import BlockDiagonalMatrix


def spd_blocks(rng, nb, bs):
    a = rng.standard_normal((nb, bs, bs))
    return a @ np.swapaxes(a, 1, 2) + 2 * np.eye(bs)


class TestBlockDiagonal:
    def test_matvec_matches_dense(self, rng):
        blocks = spd_blocks(rng, 4, 3)
        m = BlockDiagonalMatrix(blocks)
        x = rng.standard_normal(12)
        dense = np.zeros((12, 12))
        for i in range(4):
            dense[3 * i : 3 * i + 3, 3 * i : 3 * i + 3] = blocks[i]
        assert np.allclose(m.matvec(x), dense @ x)

    def test_solve_roundtrip(self, rng):
        m = BlockDiagonalMatrix(spd_blocks(rng, 5, 4))
        b = rng.standard_normal(20)
        assert np.allclose(m.matvec(m.solve(b)), b, atol=1e-10)

    def test_inverse_precomputed_once(self, rng):
        m = BlockDiagonalMatrix(spd_blocks(rng, 3, 2))
        inv1 = m.precompute_inverse()
        inv2 = m.precompute_inverse()
        assert inv1 is inv2  # cached, per the paper's init-once strategy

    def test_diagonal(self, rng):
        blocks = spd_blocks(rng, 3, 2)
        m = BlockDiagonalMatrix(blocks)
        assert np.allclose(m.diagonal(), np.concatenate([np.diag(b) for b in blocks]))

    def test_inverse_as_csr(self, rng):
        m = BlockDiagonalMatrix(spd_blocks(rng, 4, 3))
        csr = m.inverse_as_csr()
        b = rng.standard_normal(12)
        assert np.allclose(csr.matvec(b), m.solve(b), atol=1e-10)
        assert csr.nnz == 4 * 9  # block-diagonal sparsity

    def test_symmetry_check(self, rng):
        sym = BlockDiagonalMatrix(spd_blocks(rng, 2, 3))
        assert sym.is_symmetric()
        nonsym = BlockDiagonalMatrix(rng.standard_normal((2, 3, 3)))
        assert not nonsym.is_symmetric()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BlockDiagonalMatrix(np.zeros((2, 3, 4)))
        m = BlockDiagonalMatrix(np.eye(2)[None])
        with pytest.raises(ValueError):
            m.matvec(np.ones(3))
        with pytest.raises(ValueError):
            m.solve(np.ones(3))

    def test_shape_property(self, rng):
        m = BlockDiagonalMatrix(spd_blocks(rng, 6, 5))
        assert m.shape == (30, 30)
