"""Tests for the corner-force engine.

The central validation mirrors the paper's Section 4.1: the redesigned
batched formulation must agree with the loop-based reference formulation
to roundoff.
"""

import numpy as np
import pytest

from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space, L2Space
from repro.hydro.corner_force import ForceEngine, corner_force_loops
from repro.hydro.eos import GammaLawEOS
from repro.hydro.state import HydroState
from repro.hydro.viscosity import ViscosityCoefficients


def make_engine(dim=2, k=2, nzones=2, gamma=1.4, visc=True):
    if dim == 2:
        mesh = cartesian_mesh_2d(nzones, nzones)
    else:
        mesh = cartesian_mesh_3d(nzones, nzones, nzones)
    h1 = H1Space(mesh, k)
    l2 = L2Space(mesh, k - 1)
    quad = tensor_quadrature(dim, 2 * k)
    geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho0 = np.ones((mesh.nzones, quad.nqp))
    eng = ForceEngine(
        h1, l2, quad, GammaLawEOS(gamma=gamma), rho0, geo0,
        viscosity=ViscosityCoefficients(enabled=visc),
    )
    return eng, h1, l2


def random_state(eng, h1, l2, rng, v_scale=0.1, perturb_x=0.0):
    v = v_scale * rng.standard_normal((h1.ndof, h1.dim))
    e = rng.random(l2.ndof) + 0.5
    x = h1.node_coords + perturb_x * rng.standard_normal((h1.ndof, h1.dim))
    return HydroState(v, e, x, 0.0)


class TestBatchedVsLoops:
    """The paper's CPU/GPU consistency check (Table 6 analog)."""

    @pytest.mark.parametrize("dim,k", [(2, 1), (2, 2), (2, 3), (3, 1), (3, 2)])
    def test_agreement(self, rng, dim, k):
        eng, h1, l2 = make_engine(dim=dim, k=k, nzones=2)
        state = random_state(eng, h1, l2, rng, perturb_x=0.01)
        batched = eng.compute(state).Fz
        loops = corner_force_loops(eng, state)
        assert np.allclose(batched, loops, rtol=1e-12, atol=1e-13)

    def test_agreement_no_viscosity(self, rng):
        eng, h1, l2 = make_engine(visc=False)
        state = random_state(eng, h1, l2, rng, perturb_x=0.02)
        assert np.allclose(eng.compute(state).Fz, corner_force_loops(eng, state), rtol=1e-12)

    def test_agreement_per_zone_gamma(self, rng):
        eng, h1, l2 = make_engine()
        nz = eng.kinematic.mesh.nzones
        gammas = 1.3 + 0.3 * rng.random(nz)
        eng.eos = GammaLawEOS(gamma=gammas[:, None])
        state = random_state(eng, h1, l2, rng)
        assert np.allclose(eng.compute(state).Fz, corner_force_loops(eng, state), rtol=1e-12)


class TestForceStructure:
    def test_fz_shape_paper_3d_q2q1(self):
        """3D Q2-Q1: Fz rows = 81 vector dofs, cols = 8 (Table 4)."""
        eng, h1, l2 = make_engine(dim=3, k=2, nzones=1)
        state = HydroState(
            np.zeros((h1.ndof, 3)), np.ones(l2.ndof), h1.node_coords, 0.0
        )
        res = eng.compute(state)
        assert res.Fz.shape == (1, 27, 3, 8)  # (i*d) x j = 81 x 8

    def test_uniform_pressure_zero_net_force_interior(self, rng):
        """Constant pressure: F.1 assembles to zero on interior dofs
        (discrete divergence of a constant field)."""
        eng, h1, l2 = make_engine(dim=2, k=2, nzones=3, visc=False)
        e = np.ones(l2.ndof)
        state = HydroState(np.zeros((h1.ndof, 2)), e, h1.node_coords, 0.0)
        res = eng.compute(state)
        rhs = h1.scatter_add(eng.force_times_one(res.Fz))
        boundary = set(h1.boundary_dofs())
        interior = [i for i in range(h1.ndof) if i not in boundary]
        assert np.allclose(rhs[interior], 0.0, atol=1e-12)

    def test_force_pushes_outward_from_hot_zone(self):
        """Pressure in one zone accelerates its neighborhood outward."""
        eng, h1, l2 = make_engine(dim=2, k=1, nzones=2, visc=False)
        e = np.zeros(l2.ndof)
        ez = l2.gather(e)
        ez[0, :] = 10.0  # zone 0 is at the origin corner
        state = HydroState(np.zeros((h1.ndof, 2)), l2.scatter(ez), h1.node_coords, 0.0)
        res = eng.compute(state)
        rhs = h1.scatter_add(eng.force_times_one(res.Fz))
        # The dof diagonally opposite the origin inside zone 0 (0.5, 0.5)
        center = np.argmin(np.linalg.norm(h1.node_coords - 0.5, axis=1))
        assert rhs[center, 0] > 0
        assert rhs[center, 1] > 0

    def test_energy_identity(self, rng):
        """1^T F^T v == v . (F 1): the discrete conservation mechanism."""
        eng, h1, l2 = make_engine(dim=2, k=2)
        state = random_state(eng, h1, l2, rng, perturb_x=0.01)
        res = eng.compute(state)
        rhs_v = h1.scatter_add(eng.force_times_one(res.Fz))  # -F.1
        dedt = eng.force_transpose_times_v(res.Fz, state.v)  # F^T v per dof
        lhs = float(np.sum(dedt))
        rhs = -float(np.sum(rhs_v * state.v))
        assert lhs == pytest.approx(rhs, rel=1e-12, abs=1e-13)

    def test_invalid_geometry_flagged(self):
        eng, h1, l2 = make_engine(dim=2, k=1, nzones=1)
        x = h1.node_coords.copy()
        x[0] = [5.0, 5.0]  # tangle the single zone
        state = HydroState(np.zeros((h1.ndof, 2)), np.ones(l2.ndof), x, 0.0)
        res = eng.compute(state)
        assert not res.valid
        assert res.dt_est == 0.0

    def test_dt_estimate_positive_and_scales(self):
        eng, h1, l2 = make_engine(dim=2, k=2, nzones=2)
        state = HydroState(np.zeros((h1.ndof, 2)), np.ones(l2.ndof), h1.node_coords, 0.0)
        res = eng.compute(state)
        assert res.dt_est > 0
        # Doubling energy raises sound speed, shrinking dt.
        state2 = HydroState(state.v, 4.0 * state.e, state.x, 0.0)
        res2 = eng.compute(state2)
        assert res2.dt_est == pytest.approx(res.dt_est / 2.0, rel=1e-10)

    def test_density_from_mass_conservation(self):
        """Compressing the mesh uniformly doubles the density."""
        eng, h1, l2 = make_engine(dim=2, k=1, nzones=2)
        geo_half = eng.point_geometry(0.5 * h1.node_coords)
        rho, _ = eng.point_thermo(np.ones(l2.ndof), geo_half)
        assert np.allclose(rho, 4.0)  # area scales by 1/4 in 2D

    def test_keep_az_flag(self, rng):
        eng, h1, l2 = make_engine()
        state = random_state(eng, h1, l2, rng)
        assert eng.compute(state).Az is None
        res = eng.compute(state, keep_az=True)
        assert res.Az is not None
        assert np.allclose(eng.assemble_Fz(res.Az), res.Fz)

    def test_rho0_shape_validation(self):
        mesh = cartesian_mesh_2d(1, 1)
        h1 = H1Space(mesh, 1)
        l2 = L2Space(mesh, 0)
        quad = tensor_quadrature(2, 2)
        geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
        with pytest.raises(ValueError):
            ForceEngine(h1, l2, quad, GammaLawEOS(), np.ones((1, 3)), geo0)
