"""Tests for streams overlap, multi-GPU, and the tuning cache."""

import numpy as np
import pytest

from repro.gpu import get_gpu
from repro.gpu.execution import KernelCost
from repro.gpu.multigpu import balanced_shares, run_multi_gpu_phase
from repro.gpu.streams import overlap_phase
from repro.kernels import FEConfig
from repro.kernels.registry import corner_force_costs
from repro.tuning.cache import TuningCache

K20 = get_gpu("K20")
CFG = FEConfig(dim=3, order=2, nzones=512)


def costs():
    return corner_force_costs(CFG, "optimized")


class TestStreams:
    def test_overlap_never_slower(self):
        ph = overlap_phase(K20, costs(), h2d_bytes=50e6, d2h_bytes=20e6)
        assert ph.overlapped_s <= ph.serial_s
        assert ph.speedup >= 1.0

    def test_transfer_heavy_phase_benefits(self):
        """When transfers rival compute, chunked overlap hides most of
        them."""
        ph = overlap_phase(K20, costs(), h2d_bytes=500e6, d2h_bytes=500e6, chunks=8)
        # Full-duplex pipelining hides at most the smaller direction:
        # efficiency approaches 0.5 for symmetric traffic.
        assert ph.overlap_efficiency > 0.4
        assert ph.speedup > 1.5

    def test_compute_dominated_phase_small_gain(self):
        ph = overlap_phase(K20, costs(), h2d_bytes=1e4, d2h_bytes=1e4)
        assert ph.speedup == pytest.approx(1.0, abs=0.05)

    def test_more_chunks_hide_more(self):
        few = overlap_phase(K20, costs(), 200e6, 200e6, chunks=2)
        many = overlap_phase(K20, costs(), 200e6, 200e6, chunks=16)
        assert many.overlapped_s <= few.overlapped_s + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            overlap_phase(K20, costs(), 1e6, 1e6, chunks=0)
        with pytest.raises(ValueError):
            overlap_phase(K20, costs(), -1.0, 0.0)


class TestMultiGPU:
    def test_two_gpus_nearly_halve_time(self):
        one = run_multi_gpu_phase(K20, costs(), balanced_shares(1))
        two = run_multi_gpu_phase(K20, costs(), balanced_shares(2))
        assert two.time_s < 0.75 * one.time_s

    def test_node_power_sums(self):
        two = run_multi_gpu_phase(K20, costs(), balanced_shares(2))
        per = [r.power_w for r in two.per_device]
        assert two.power_w == pytest.approx(sum(per))

    def test_unbalanced_split_is_slower(self):
        even = run_multi_gpu_phase(K20, costs(), [0.5, 0.5])
        skew = run_multi_gpu_phase(K20, costs(), [0.9, 0.1])
        assert skew.time_s > even.time_s
        assert skew.imbalance > even.imbalance

    def test_energy_conserved_across_split(self):
        """Same work, so similar total energy regardless of split."""
        one = run_multi_gpu_phase(K20, costs(), balanced_shares(1))
        two = run_multi_gpu_phase(K20, costs(), balanced_shares(2))
        assert two.energy_j == pytest.approx(one.energy_j, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_multi_gpu_phase(K20, costs(), [])
        with pytest.raises(ValueError):
            run_multi_gpu_phase(K20, costs(), [0.7, 0.7])
        with pytest.raises(ValueError):
            balanced_shares(0)


class TestTuningCache:
    def test_miss_then_hit(self, tmp_path):
        cache = TuningCache(tmp_path / "tune.json")
        calls = []

        def tune():
            calls.append(1)
            return {"matrices_per_block": 32}

        p1 = cache.get_or_tune(K20, CFG, "kernel3", tune)
        p2 = cache.get_or_tune(K20, CFG, "kernel3", tune)
        assert p1 == p2 == {"matrices_per_block": 32}
        assert len(calls) == 1

    def test_architecture_port_invalidates(self, tmp_path):
        """Fermi -> Kepler changes the fingerprint: fresh tuning runs."""
        cache = TuningCache(tmp_path / "tune.json")
        cache.store(get_gpu("C2050"), CFG, "kernel3", {"m": 8})
        assert cache.lookup(K20, CFG, "kernel3") is None
        assert cache.lookup(get_gpu("C2050"), CFG, "kernel3") == {"m": 8}

    def test_order_change_misses(self, tmp_path):
        cache = TuningCache(tmp_path / "t.json")
        cache.store(K20, CFG, "kernel3", {"m": 32})
        q4 = FEConfig(dim=3, order=4, nzones=512)
        assert cache.lookup(K20, q4, "kernel3") is None

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "t.json"
        TuningCache(path).store(K20, CFG, "kernel7", {"block_cols": 16})
        reloaded = TuningCache(path)
        assert reloaded.lookup(K20, CFG, "kernel7") == {"block_cols": 16}

    def test_invalidate_device(self, tmp_path):
        cache = TuningCache(tmp_path / "t.json")
        cache.store(K20, CFG, "a", {"m": 1})
        cache.store(K20, CFG, "b", {"m": 2})
        cache.store(get_gpu("C2050"), CFG, "a", {"m": 3})
        assert cache.invalidate_device(K20) == 2
        assert len(cache) == 1

    def test_memory_only_mode(self):
        cache = TuningCache(None)
        cache.store(K20, CFG, "k", {"m": 4})
        assert cache.lookup(K20, CFG, "k") == {"m": 4}

    def test_validation(self):
        cache = TuningCache(None)
        with pytest.raises(ValueError):
            cache.store(K20, CFG, "k", {})

    def test_integration_with_autotuner(self, tmp_path):
        """End-to-end: cache wraps a real tuning campaign."""
        from repro.gpu import execute_kernel
        from repro.kernels.k34_custom_gemm import kernel3_cost
        from repro.tuning import Autotuner, ParamSpace

        cache = TuningCache(tmp_path / "t.json")

        def campaign():
            def ev(c):
                try:
                    return execute_kernel(K20, kernel3_cost(CFG, "v3", c["m"])).time_s
                except ValueError:
                    return float("inf")

            space = ParamSpace(m=[8, 16, 32]).constrain(lambda c: np.isfinite(ev(c)))
            return Autotuner(ev, space, steps_per_period=3).tune().best

        best = cache.get_or_tune(K20, CFG, "kernel3", campaign)
        assert best["m"] == 32
        assert cache.lookup(K20, CFG, "kernel3") == best
