"""Tests for mass matrix assembly."""

import numpy as np
import pytest

from repro.fem.assembly import (
    assemble_kinematic_mass,
    assemble_thermodynamic_mass,
    lump_mass,
    zone_mass_blocks,
)
from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space, L2Space


def setup(nx=2, ny=2, k=2, rho=1.0, dim=2):
    if dim == 2:
        mesh = cartesian_mesh_2d(nx, ny)
    else:
        mesh = cartesian_mesh_3d(nx, ny, ny)
    h1 = H1Space(mesh, k)
    l2 = L2Space(mesh, k - 1)
    quad = tensor_quadrature(dim, 2 * k)
    geo = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho_qp = np.full((mesh.nzones, quad.nqp), rho)
    return mesh, h1, l2, quad, geo, rho_qp


class TestKinematicMass:
    def test_total_mass(self):
        mesh, h1, _, quad, geo, rho = setup(rho=3.0)
        m = assemble_kinematic_mass(h1, quad, rho, geo)
        # 1^T M 1 = integral of rho over the domain = 3.
        ones = np.ones(h1.ndof)
        assert ones @ m.matvec(ones) == pytest.approx(3.0, rel=1e-12)

    def test_symmetric(self):
        _, h1, _, quad, geo, rho = setup()
        m = assemble_kinematic_mass(h1, quad, rho, geo)
        assert m.is_symmetric(tol=1e-10)

    def test_spd_diagonal_positive(self):
        _, h1, _, quad, geo, rho = setup(k=3)
        m = assemble_kinematic_mass(h1, quad, rho, geo)
        assert np.all(m.diagonal() > 0)

    def test_sparsity(self):
        """Mass couples only dofs sharing a zone: global matrix is sparse."""
        _, h1, _, quad, geo, rho = setup(nx=4, ny=4, k=2)
        m = assemble_kinematic_mass(h1, quad, rho, geo)
        assert m.nnz < 0.3 * h1.ndof**2

    def test_variable_density(self):
        mesh, h1, _, quad, geo, _ = setup()
        rho = np.ones((mesh.nzones, quad.nqp))
        rho[0] = 10.0  # heavy zone
        m = assemble_kinematic_mass(h1, quad, rho, geo)
        ones = np.ones(h1.ndof)
        expect = 1.0 + 9.0 * 0.25  # 1 + extra mass in zone of volume 1/4
        assert ones @ m.matvec(ones) == pytest.approx(expect, rel=1e-12)

    def test_lump_mass_positive(self):
        _, h1, _, quad, geo, rho = setup(k=2)
        m = assemble_kinematic_mass(h1, quad, rho, geo)
        lumped = lump_mass(m)
        assert lumped.sum() == pytest.approx(1.0, rel=1e-12)

    def test_3d_total_mass(self):
        _, h1, _, quad, geo, rho = setup(dim=3, nx=2, ny=2, k=1, rho=2.0)
        m = assemble_kinematic_mass(h1, quad, rho, geo)
        ones = np.ones(h1.ndof)
        assert ones @ m.matvec(ones) == pytest.approx(2.0, rel=1e-12)


class TestThermodynamicMass:
    def test_total_mass(self):
        _, _, l2, quad, geo, rho = setup(rho=2.0)
        # rebuild with matching spaces
        mesh, h1, l2, quad, geo, rho = setup(rho=2.0)
        m = assemble_thermodynamic_mass(l2, quad, rho, geo)
        ones = np.ones(l2.ndof)
        assert np.sum(m.matvec(ones)) == pytest.approx(2.0, rel=1e-12)

    def test_block_structure(self):
        mesh, _, l2, quad, geo, rho = setup()
        m = assemble_thermodynamic_mass(l2, quad, rho, geo)
        assert m.nblocks == mesh.nzones
        assert m.block_size == l2.ndof_per_zone

    def test_solve_inverts(self, rng):
        _, _, l2, quad, geo, rho = setup(k=3)
        mesh, h1, l2, quad, geo, rho = setup(k=3)
        m = assemble_thermodynamic_mass(l2, quad, rho, geo)
        b = rng.standard_normal(l2.ndof)
        x = m.solve(b)
        assert np.allclose(m.matvec(x), b, atol=1e-10)

    def test_symmetric(self):
        mesh, h1, l2, quad, geo, rho = setup()
        m = assemble_thermodynamic_mass(l2, quad, rho, geo)
        assert m.is_symmetric()


class TestZoneBlocks:
    def test_partition_of_unity_row_sums(self):
        """Row sums of each block integrate rho * basis_i over the zone."""
        mesh, h1, _, quad, geo, rho = setup(nx=1, ny=1, k=1)
        basis = h1.element.tabulate(quad.points)
        blocks = zone_mass_blocks(basis, quad, rho, geo.det)
        # Sum of all entries = zone mass = 1 (unit square, rho=1).
        assert blocks.sum() == pytest.approx(1.0, rel=1e-13)
        # Q1 on the reference square: classic bilinear mass matrix has
        # diagonal 1/9 (scaled by zone volume 1).
        assert np.allclose(np.diag(blocks[0]), 1.0 / 9.0)
