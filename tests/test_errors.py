"""The unified `repro.errors` hierarchy and its single exit-code map."""

import pytest

from repro.config import RunConfig
from repro.errors import (
    ConfigError,
    CorruptionError,
    EmptyParamSpaceError,
    ReproError,
    exit_code_for,
)


class TestHierarchy:
    def test_roots(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(CorruptionError, ReproError)
        # Typed errors keep their historical builtin bases, so pre-PR-8
        # `except ValueError` / `except RuntimeError` callers still work.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(CorruptionError, RuntimeError)
        assert issubclass(EmptyParamSpaceError, ConfigError)

    def test_every_subsystem_error_is_a_repro_error(self):
        from repro.io.checkpoint import CheckpointCorruptionError
        from repro.service import (
            AdmissionError,
            BreakerOpenError,
            DeadlineExceeded,
            JournalCorruptionError,
        )
        from repro.tuning import TuningCacheCorruptionError

        for exc in (CheckpointCorruptionError, JournalCorruptionError,
                    TuningCacheCorruptionError):
            assert issubclass(exc, CorruptionError)
        for exc in (AdmissionError, DeadlineExceeded, BreakerOpenError):
            assert issubclass(exc, ReproError)
            assert issubclass(exc, RuntimeError)
            assert not issubclass(exc, CorruptionError)

    def test_config_validation_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown tuning_objective"):
            RunConfig(tuning_objective="bogus")
        with pytest.raises(ConfigError, match="unknown tuning_strategy"):
            RunConfig(tuning_strategy="bogus")
        with pytest.raises(ConfigError):
            RunConfig(backend="nonsense")


class TestExitCodes:
    def test_mapping(self):
        from repro.tuning import TuningCacheCorruptionError

        assert exit_code_for(ConfigError("x")) == 2
        assert exit_code_for(EmptyParamSpaceError("x")) == 2
        assert exit_code_for(CorruptionError("x")) == 3
        assert exit_code_for(TuningCacheCorruptionError("x")) == 3
        assert exit_code_for(ReproError("x")) == 1

    def test_cli_maps_config_error_to_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["serve", "--journal", str(tmp_path / "j.jsonl"),
                     "--workers", "-1"])
        assert code == 2
        assert "workers must be non-negative" in capsys.readouterr().err

    def test_cli_maps_corruption_to_3_with_hint(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "journal.jsonl"
        journal.write_text('{"torn...\n')
        code = main(["serve", "--journal", str(journal), "--strict-journal"])
        assert code == 3
        err = capsys.readouterr().err
        assert "re-run without --strict-journal" in err
