"""Tests for the simulated GPU device (queues, timeline, energy)."""

import pytest

from repro.gpu.device import SimulatedGPU
from repro.gpu.execution import KernelCost
from repro.gpu.specs import get_gpu


def cost(name="k", flops=1e8, dram=1e7):
    return KernelCost(name=name, flops=flops, dram_bytes=dram,
                      threads_per_block=256, blocks=64, regs_per_thread=32)


class TestSimulatedGPU:
    def test_launch_advances_clock(self):
        gpu = SimulatedGPU(get_gpu("K20"))
        rec = gpu.launch(cost())
        assert gpu.clock_s == pytest.approx(rec.end_s)
        assert rec.duration_s > 0

    def test_energy_accumulates(self):
        gpu = SimulatedGPU(get_gpu("K20"))
        gpu.launch(cost())
        e1 = gpu.total_energy_j
        gpu.launch(cost())
        assert gpu.total_energy_j > e1

    def test_idle_energy(self):
        gpu = SimulatedGPU(get_gpu("K20"))
        gpu.idle(10.0)
        assert gpu.total_energy_j == pytest.approx(200.0)  # 10 s x 20 W
        assert gpu.clock_s == 10.0

    def test_phase_report(self):
        gpu = SimulatedGPU(get_gpu("K20"))
        rep = gpu.run_phase([cost("a"), cost("b")])
        assert rep.time_s > 0
        assert rep.power_w >= get_gpu("K20").active_base_w
        assert rep.energy_j == pytest.approx(rep.time_s * rep.power_w)
        assert len(rep.timings) == 2
        assert rep.kernel_time("a") > 0

    def test_hyperq_vs_serialization(self):
        """Same work from 8 clients: free on Kepler (32 queues), pays
        contention on Fermi (1 queue)."""
        work = [cost() for _ in range(8)]
        kepler = SimulatedGPU(get_gpu("K20")).run_phase(work, concurrent_clients=8)
        fermi = SimulatedGPU(get_gpu("C2050")).run_phase(work, concurrent_clients=8)
        k1 = SimulatedGPU(get_gpu("K20")).run_phase(work, concurrent_clients=1)
        assert kepler.time_s == pytest.approx(k1.time_s)
        fermi1 = SimulatedGPU(get_gpu("C2050")).run_phase(work, concurrent_clients=1)
        assert fermi.time_s > fermi1.time_s

    def test_hyperq_power_overhead(self):
        work = [cost()]
        p8 = SimulatedGPU(get_gpu("K20")).run_phase(work, concurrent_clients=8)
        p1 = SimulatedGPU(get_gpu("K20")).run_phase(work, concurrent_clients=1)
        assert p8.power_w > p1.power_w

    def test_breakdown(self):
        gpu = SimulatedGPU(get_gpu("K20"))
        gpu.run_phase([cost("x"), cost("x"), cost("y")])
        bd = gpu.kernel_time_breakdown()
        assert set(bd) == {"x", "y"}
        assert bd["x"] == pytest.approx(2 * bd["y"], rel=0.01)

    def test_nvml_sees_phases(self):
        gpu = SimulatedGPU(get_gpu("K20"))
        rep = gpu.run_phase([cost()])
        mid = rep.time_s / 2
        assert gpu.nvml.power_at(mid, exact=True) == pytest.approx(rep.power_w)

    def test_validation(self):
        gpu = SimulatedGPU(get_gpu("K20"))
        with pytest.raises(ValueError):
            gpu.run_phase([cost()], concurrent_clients=0)
        with pytest.raises(ValueError):
            gpu.idle(-1.0)
