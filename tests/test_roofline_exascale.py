"""Tests for the roofline report and exascale projections."""

import pytest

from repro.analysis.exascale import (
    EXASCALE_TARGET_GFLOPS_PER_W,
    gflops_per_watt_needed,
    project_system,
)
from repro.analysis.roofline import ridge_intensity, roofline_point, roofline_report
from repro.gpu import get_gpu
from repro.gpu.execution import KernelCost
from repro.kernels import FEConfig
from repro.kernels.registry import corner_force_costs

K20 = get_gpu("K20")


class TestRoofline:
    def test_ridge_point(self):
        """K20: 1170 GF / 208 GB/s = 5.6 flops per byte."""
        assert ridge_intensity(K20) == pytest.approx(5.625, rel=0.01)

    def test_low_intensity_kernel_bandwidth_bound(self):
        c = KernelCost(name="streamy", flops=1e8, dram_bytes=1e9,
                       threads_per_block=256, blocks=64, dram_efficiency=1.0)
        p = roofline_point(K20, c)
        assert p.intensity == pytest.approx(0.1)
        assert p.attainable_gflops == pytest.approx(20.8, rel=0.01)
        assert p.achieved_gflops <= p.attainable_gflops * 1.001

    def test_high_intensity_kernel_compute_capped(self):
        c = KernelCost(name="gemm", flops=1e11, dram_bytes=1e8,
                       threads_per_block=256, blocks=64, compute_efficiency=1.0)
        p = roofline_point(K20, c)
        assert p.attainable_gflops == pytest.approx(K20.peak_dp_gflops)

    def test_achieved_never_exceeds_roof(self):
        cfg = FEConfig(dim=3, order=2, nzones=512)
        for p in roofline_report(K20, corner_force_costs(cfg, "optimized")):
            # On-chip-bound kernels can beat the *DRAM* roof; nothing
            # beats the compute peak.
            assert p.achieved_gflops <= K20.peak_dp_gflops * 1.001

    def test_report_sorted_by_intensity(self):
        cfg = FEConfig(dim=3, order=2, nzones=512)
        pts = roofline_report(K20, corner_force_costs(cfg, "optimized"))
        ints = [p.intensity for p in pts]
        assert ints == sorted(ints)

    def test_paper_batched_dgemm_point(self):
        """DIM=3 batched GEMM: intensity 2*3/24 = 0.25 -> 52 GF roof."""
        from repro.kernels.k56_dgemm_batched import kernel5_cost

        cfg = FEConfig(dim=3, order=2, nzones=512)
        p = roofline_point(K20, kernel5_cost(cfg, "tuned"))
        assert p.attainable_gflops == pytest.approx(52.0, rel=0.02)
        assert 0.4 <= p.efficiency <= 0.8  # the paper's ~60%

    def test_zero_dram_kernel(self):
        c = KernelCost(name="onchip", flops=1e9, dram_bytes=0.0,
                       shared_bytes=1e9, threads_per_block=256, blocks=32)
        p = roofline_point(K20, c)
        assert p.attainable_gflops == K20.peak_dp_gflops


class TestExascale:
    def test_paper_target(self):
        """'a goal of 20MW for exascale systems, which means 50 GFLOPS
        per watt'."""
        assert gflops_per_watt_needed(1e18, 20e6) == pytest.approx(
            EXASCALE_TARGET_GFLOPS_PER_W
        )

    def test_tianhe2_data_point(self):
        """'Tianhe-2 has already reached 17MW at 0.03 EFLOPS' ~ 1.8 GF/W."""
        assert gflops_per_watt_needed(0.03e18, 17e6) == pytest.approx(1.76, rel=0.01)

    def test_k20_exaflop_machine(self):
        k20 = get_gpu("K20")
        proj = project_system("K20", k20.peak_dp_gflops, k20.tdp_w)
        # ~855k boards, ~256 MW: an order of magnitude off the target —
        # the gap the paper's energy-efficiency push addresses.
        assert proj.devices_needed == pytest.approx(855_000, rel=0.01)
        assert 150 < proj.power_mw < 400
        assert not proj.meets_exascale_target

    def test_gpu_beats_cpu_at_scale(self):
        from repro.cpu import get_cpu

        k20 = get_gpu("K20")
        e5 = get_cpu("E5-2670")
        gpu_sys = project_system("K20", k20.peak_dp_gflops, k20.tdp_w)
        cpu_sys = project_system("E5-2670", e5.peak_dp_gflops, e5.tdp_w)
        assert gpu_sys.power_mw < 0.5 * cpu_sys.power_mw

    def test_application_efficiency_projection(self):
        """Projecting with *achieved* (not peak) application rates."""
        # Our hybrid node: ~1 modelled Gflop/s-scale workload at ~330 W —
        # application-level GF/W is far below nameplate, as always.
        proj = project_system("hybrid-node", 60.0, 330.0, system_gflops=1e6)
        assert proj.devices_needed == -(-10**6 // 60)
        assert proj.gflops_per_watt < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gflops_per_watt_needed(0, 1)
        with pytest.raises(ValueError):
            project_system("x", -1, 10)
        with pytest.raises(ValueError):
            project_system("x", 10, 10, overhead_fraction=1.0)
