"""Property-based tests of hydro-core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space, L2Space
from repro.hydro.corner_force import ForceEngine
from repro.hydro.eos import GammaLawEOS
from repro.hydro.state import HydroState
from repro.hydro.viscosity import ViscosityCoefficients


def make_engine(k=2, n=2, visc=True):
    mesh = cartesian_mesh_2d(n, n)
    h1 = H1Space(mesh, k)
    l2 = L2Space(mesh, k - 1)
    quad = tensor_quadrature(2, 2 * k)
    geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho0 = np.ones((mesh.nzones, quad.nqp))
    return (
        ForceEngine(h1, l2, quad, GammaLawEOS(), rho0, geo0,
                    viscosity=ViscosityCoefficients(enabled=visc)),
        h1,
        l2,
    )


class TestCornerForceInvariants:
    @given(
        cx=st.floats(-5, 5, allow_nan=False),
        cy=st.floats(-5, 5, allow_nan=False),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_galilean_invariance(self, cx, cy, seed):
        """Adding a uniform velocity leaves the force matrix unchanged:
        grad(v + c) = grad v, and the EOS sees the same (rho, e)."""
        eng, h1, l2 = make_engine()
        rng = np.random.default_rng(seed)
        v = 0.1 * rng.standard_normal((h1.ndof, 2))
        e = rng.random(l2.ndof) + 0.5
        s1 = HydroState(v, e, h1.node_coords.copy(), 0.0)
        s2 = HydroState(v + np.array([cx, cy]), e, h1.node_coords.copy(), 0.0)
        f1 = eng.compute(s1).Fz
        f2 = eng.compute(s2).Fz
        assert np.allclose(f1, f2, atol=1e-10 * max(1.0, abs(cx) + abs(cy)))

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_energy_exchange_identity(self, seed):
        """1^T F^T v == v . (F 1) for arbitrary admissible states —
        the discrete work identity conservation rests on."""
        eng, h1, l2 = make_engine()
        rng = np.random.default_rng(seed)
        state = HydroState(
            0.2 * rng.standard_normal((h1.ndof, 2)),
            rng.random(l2.ndof) + 0.1,
            h1.node_coords + 0.01 * rng.standard_normal((h1.ndof, 2)),
            0.0,
        )
        res = eng.compute(state)
        if not res.valid:
            return  # the random perturbation tangled the mesh; vacuous
        rhs_v = h1.scatter_add(eng.force_times_one(res.Fz))
        dedt = eng.force_transpose_times_v(res.Fz, state.v)
        assert float(np.sum(dedt)) == pytest.approx(
            -float(np.sum(rhs_v * state.v)), rel=1e-11, abs=1e-12
        )

    @given(scale=st.floats(0.5, 2.0), seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_pressure_force_scales_linearly_with_energy(self, scale, seed):
        """Without viscosity and with v=0, F is linear in e (gamma law)."""
        eng, h1, l2 = make_engine(visc=False)
        rng = np.random.default_rng(seed)
        e = rng.random(l2.ndof) + 0.5
        x = h1.node_coords.copy()
        zero_v = np.zeros((h1.ndof, 2))
        f1 = eng.compute(HydroState(zero_v, e, x, 0.0)).Fz
        f2 = eng.compute(HydroState(zero_v, scale * e, x, 0.0)).Fz
        assert np.allclose(f2, scale * f1, rtol=1e-10, atol=1e-13)

    def test_mirror_symmetry(self):
        """A y-mirrored state produces the y-mirrored force."""
        eng, h1, l2 = make_engine(k=1, n=2, visc=False)
        rng = np.random.default_rng(7)
        e = rng.random(l2.ndof) + 0.5
        x = h1.node_coords
        zero_v = np.zeros((h1.ndof, 2))
        res = eng.compute(HydroState(zero_v, e, x.copy(), 0.0))
        rhs = h1.scatter_add(eng.force_times_one(res.Fz))

        # Mirror: x -> (x0, 1 - x1). Find the dof and zone permutations.
        mirrored = np.column_stack([x[:, 0], 1.0 - x[:, 1]])
        perm = np.array([
            int(np.argmin(np.linalg.norm(x - m, axis=1))) for m in mirrored
        ])
        centroids = eng.geom_eval.physical_points(x).mean(axis=1)
        m_centroids = np.column_stack([centroids[:, 0], 1.0 - centroids[:, 1]])
        zperm = np.array([
            int(np.argmin(np.linalg.norm(centroids - mc, axis=1)))
            for mc in m_centroids
        ])
        ez = l2.gather(e)
        e_mirror = l2.scatter(ez[zperm][:, ::1])  # Q0: one dof per zone
        res_m = eng.compute(HydroState(zero_v, e_mirror, x.copy(), 0.0))
        rhs_m = h1.scatter_add(eng.force_times_one(res_m.Fz))
        # Forces mirror: x-component maps directly, y-component negates.
        assert np.allclose(rhs_m[perm, 0], rhs[:, 0], atol=1e-12)
        assert np.allclose(rhs_m[perm, 1], -rhs[:, 1], atol=1e-12)


class TestStateProperties:
    @given(alpha=st.floats(-2, 2, allow_nan=False), seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_axpy(self, alpha, seed):
        rng = np.random.default_rng(seed)
        s = HydroState(rng.standard_normal((5, 2)), rng.standard_normal(7),
                       rng.standard_normal((5, 2)), 1.0)
        dv = rng.standard_normal((5, 2))
        de = rng.standard_normal(7)
        dx = rng.standard_normal((5, 2))
        s2 = s.axpy(alpha, dv, de, dx)
        assert np.allclose(s2.v, s.v + alpha * dv)
        assert np.allclose(s2.e, s.e + alpha * de)
        assert s2.t == s.t

    def test_copy_is_deep(self):
        s = HydroState(np.zeros((2, 2)), np.zeros(3), np.zeros((2, 2)))
        c = s.copy()
        c.v[0, 0] = 5.0
        assert s.v[0, 0] == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            HydroState(np.zeros((2, 2)), np.zeros(3), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            HydroState(np.zeros((2, 2)), np.zeros((3, 1)), np.zeros((2, 2)))


class TestDeterminism:
    def test_runs_are_reproducible(self):
        """Two identical solver runs produce bit-identical states."""
        from repro import LagrangianHydroSolver, SedovProblem

        def one():
            p = SedovProblem(dim=2, order=2, zones_per_dim=3)
            s = LagrangianHydroSolver(p)
            s.run(t_final=0.03)
            return s.state

        a, b = one(), one()
        assert np.array_equal(a.v, b.v)
        assert np.array_equal(a.e, b.e)
        assert np.array_equal(a.x, b.x)
