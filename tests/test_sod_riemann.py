"""Tests: exact Riemann solver + Sod shock-tube verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LagrangianHydroSolver
from repro.analysis.riemann import RiemannState, solve_riemann
from repro.problems.sod import SodProblem


class TestExactRiemann:
    def test_sod_star_values(self):
        """Toro's canonical Sod results: p* = 0.30313, u* = 0.92745."""
        sol = solve_riemann(SodProblem.LEFT, SodProblem.RIGHT, 1.4)
        assert sol.p_star == pytest.approx(0.30313, abs=2e-5)
        assert sol.u_star == pytest.approx(0.92745, abs=2e-5)

    def test_sod_plateaus(self):
        sol = solve_riemann(SodProblem.LEFT, SodProblem.RIGHT, 1.4)
        rho, u, p = sol.sample(np.array([-2.0, 0.5, 1.2, 3.0]))
        assert rho[0] == pytest.approx(1.0)       # undisturbed left
        assert rho[1] == pytest.approx(0.42632, abs=1e-4)  # star left
        assert rho[2] == pytest.approx(0.26557, abs=1e-4)  # post-shock
        assert rho[3] == pytest.approx(0.125)     # undisturbed right

    def test_symmetric_problem(self):
        """Mirror-symmetric colliding states: u* = 0 by symmetry."""
        l = RiemannState(1.0, 1.0, 1.0)
        r = RiemannState(1.0, -1.0, 1.0)
        sol = solve_riemann(l, r)
        assert sol.u_star == pytest.approx(0.0, abs=1e-12)
        assert sol.p_star > 1.0  # compression

    def test_trivial_problem(self):
        s = RiemannState(1.0, 0.5, 1.0)
        sol = solve_riemann(s, s)
        assert sol.p_star == pytest.approx(1.0, rel=1e-10)
        assert sol.u_star == pytest.approx(0.5, rel=1e-10)
        rho, u, p = sol.sample(np.linspace(-1, 2, 7))
        assert np.allclose(rho, 1.0)

    def test_vacuum_detected(self):
        l = RiemannState(1.0, -10.0, 0.01)
        r = RiemannState(1.0, 10.0, 0.01)
        with pytest.raises(ValueError):
            solve_riemann(l, r)

    def test_state_validation(self):
        with pytest.raises(ValueError):
            RiemannState(-1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            RiemannState(1.0, 0.0, 0.0)

    @given(
        rho_l=st.floats(0.1, 5.0), p_l=st.floats(0.1, 5.0),
        rho_r=st.floats(0.1, 5.0), p_r=st.floats(0.1, 5.0),
        du=st.floats(-1.0, 1.0),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_solution_consistency(self, rho_l, p_l, rho_r, p_r, du, seed):
        """The sampled solution connects continuously to the data and
        has a single velocity/pressure in the star region."""
        left = RiemannState(rho_l, 0.0, p_l)
        right = RiemannState(rho_r, du, p_r)
        sol = solve_riemann(left, right)
        assert sol.p_star > 0
        rho, u, p = sol.sample(np.array([-100.0, 100.0]))
        assert rho[0] == pytest.approx(rho_l, rel=1e-10)
        assert rho[1] == pytest.approx(rho_r, rel=1e-10)
        # Pressure and velocity are continuous across the contact.
        eps = 1e-9
        _, u_c, p_c = sol.sample(np.array([sol.u_star - eps, sol.u_star + eps]))
        assert u_c[0] == pytest.approx(u_c[1], abs=1e-6)
        assert p_c[0] == pytest.approx(p_c[1], abs=1e-6)


@pytest.mark.slow
class TestSodShockTube:
    def test_solver_matches_exact(self):
        prob = SodProblem(order=2, nx=40, ny=1)
        solver = LagrangianHydroSolver(prob)
        res = solver.run(t_final=0.2)
        assert res.reached_t_final
        assert abs(res.energy_change) / res.energy_history[0].total < 1e-11
        rho = solver.density_at_points().ravel()
        x = solver.engine.geom_eval.physical_points(solver.state.x).reshape(-1, 2)[:, 0]
        rho_ex, _, _ = prob.exact_profile(x, 0.2)
        # Shock-capturing smearing: small L1 error, accurate plateaus.
        assert np.mean(np.abs(rho - rho_ex)) < 0.02
        post_shock = rho[(x > 0.72) & (x < 0.83)]
        assert post_shock.mean() == pytest.approx(0.26557, rel=0.02)
        star_left = rho[(x > 0.55) & (x < 0.65)]
        assert star_left.mean() == pytest.approx(0.42632, rel=0.02)

    def test_shock_position(self):
        prob = SodProblem(order=2, nx=40, ny=1)
        solver = LagrangianHydroSolver(prob)
        solver.run(t_final=0.2)
        rho = solver.density_at_points().ravel()
        x = solver.engine.geom_eval.physical_points(solver.state.x).reshape(-1, 2)[:, 0]
        # The exact shock sits at x = 0.5 + 1.7522 * 0.2 = 0.8504;
        # find the numerical jump from ~0.266 down to 0.125.
        order = np.argsort(x)
        xs, rs = x[order], rho[order]
        jump = np.flatnonzero((rs[:-1] > 0.2) & (rs[1:] < 0.2))
        assert jump.size > 0
        assert xs[jump[-1]] == pytest.approx(0.8504, abs=0.05)


class TestCholesky:
    def spd(self, rng, nb, n):
        a = rng.standard_normal((nb, n, n))
        return a @ np.swapaxes(a, 1, 2) + n * np.eye(n)

    def test_factorization(self, rng):
        from repro.linalg import batched_cholesky

        a = self.spd(rng, 6, 4)
        L = batched_cholesky(a)
        assert np.allclose(L @ np.swapaxes(L, 1, 2), a, atol=1e-10)
        # strictly lower triangular above diagonal
        assert np.allclose(np.triu(L, k=1), 0.0)

    def test_solve_matches_inverse(self, rng):
        from repro.linalg import batched_cholesky, batched_cholesky_solve

        a = self.spd(rng, 5, 3)
        L = batched_cholesky(a)
        b = rng.standard_normal((5, 3))
        x = batched_cholesky_solve(L, b)
        assert np.allclose(np.einsum("bij,bj->bi", a, x), b, atol=1e-9)

    def test_mass_blocks_end_to_end(self):
        """Factor the real thermodynamic mass blocks and solve through
        them — matching the explicit-inverse path to roundoff."""
        from repro import SedovProblem, LagrangianHydroSolver
        from repro.linalg import batched_cholesky, batched_cholesky_solve

        s = LagrangianHydroSolver(SedovProblem(dim=2, order=3, zones_per_dim=2))
        blocks = s.mass_e.blocks
        L = batched_cholesky(blocks)
        rng = np.random.default_rng(3)
        b = rng.standard_normal(s.mass_e.n)
        via_chol = batched_cholesky_solve(
            L, b.reshape(s.mass_e.nblocks, -1)
        ).ravel()
        assert np.allclose(via_chol, s.mass_e.solve(b), atol=1e-10)

    def test_not_spd_raises(self):
        from repro.linalg import batched_cholesky

        with pytest.raises(np.linalg.LinAlgError):
            batched_cholesky(np.array([[[1.0, 2.0], [2.0, 1.0]]]))  # indefinite

    def test_triangular_solve_validation(self, rng):
        from repro.linalg import batched_triangular_solve

        with pytest.raises(ValueError):
            batched_triangular_solve(np.eye(3)[None], np.ones((1, 4)))

    @given(seed=st.integers(0, 2**31), n=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_cholesky_property(self, seed, n):
        from repro.linalg import batched_cholesky

        rng = np.random.default_rng(seed)
        a = self.spd(rng, 3, n)
        L = batched_cholesky(a)
        assert np.allclose(L @ np.swapaxes(L, 1, 2), a, rtol=1e-8, atol=1e-8)
        assert np.all(np.einsum("bii->bi", L) > 0)
