"""Tests for batched geometry evaluation."""

import numpy as np
import pytest

from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space


class TestGeometry2D:
    def test_uniform_mesh_jacobian(self):
        mesh = cartesian_mesh_2d(4, 2)
        sp = H1Space(mesh, 2)
        quad = tensor_quadrature(2, 4)
        geo = GeometryEvaluator(sp, quad).evaluate(sp.node_coords)
        # Affine map: J = diag(1/4, 1/2) everywhere.
        assert np.allclose(geo.jac[..., 0, 0], 0.25)
        assert np.allclose(geo.jac[..., 1, 1], 0.5)
        assert np.allclose(geo.jac[..., 0, 1], 0.0)
        assert np.allclose(geo.det, 0.125)
        assert geo.check_valid()

    def test_zone_volumes_sum_to_domain(self):
        mesh = cartesian_mesh_2d(3, 3)
        sp = H1Space(mesh, 3)
        quad = tensor_quadrature(2, 6)
        ge = GeometryEvaluator(sp, quad)
        vols = ge.zone_volumes(sp.node_coords)
        assert np.allclose(vols.sum(), 1.0)
        assert np.allclose(vols, 1.0 / 9.0)

    def test_curved_mesh_volume(self):
        """A smooth deformation preserving the boundary keeps volume
        (divergence-free displacement field)."""
        mesh = cartesian_mesh_2d(4, 4)
        sp = H1Space(mesh, 4)
        quad = tensor_quadrature(2, 8)
        ge = GeometryEvaluator(sp, quad)
        x = sp.node_coords.copy()
        # A shear x -> x + 0.1 sin(pi y) keeps det J = 1.
        x[:, 0] += 0.1 * np.sin(np.pi * x[:, 1])
        geo = ge.evaluate(x)
        # Reference det for a 4x4 grid is 1/16; the volume-preserving
        # shear must not change it (up to interpolation error of the
        # order-4 geometry representation of sin).
        assert np.allclose(geo.det, 1.0 / 16.0, atol=2e-5)
        assert np.allclose(ge.zone_volumes(x).sum(), 1.0, atol=1e-6)

    def test_adjugate_identity(self, rng):
        mesh = cartesian_mesh_2d(2, 2)
        sp = H1Space(mesh, 2)
        quad = tensor_quadrature(2, 3)
        x = sp.node_coords + 0.02 * rng.standard_normal(sp.node_coords.shape)
        geo = GeometryEvaluator(sp, quad).evaluate(x)
        prod = geo.adj @ geo.jac
        expect = geo.det[..., None, None] * np.eye(2)
        assert np.allclose(prod, expect, atol=1e-13)

    def test_inverse_property(self):
        mesh = cartesian_mesh_2d(2, 1)
        sp = H1Space(mesh, 1)
        quad = tensor_quadrature(2, 2)
        geo = GeometryEvaluator(sp, quad).evaluate(sp.node_coords)
        assert np.allclose(geo.inv @ geo.jac, np.eye(2), atol=1e-13)

    def test_tangled_detection(self):
        mesh = cartesian_mesh_2d(2, 1)
        sp = H1Space(mesh, 1)
        quad = tensor_quadrature(2, 2)
        x = sp.node_coords.copy()
        # Flip one vertex far across the zone to invert it.
        x[0] = [2.0, 2.0]
        geo = GeometryEvaluator(sp, quad).evaluate(x)
        assert not geo.check_valid()

    def test_physical_points(self):
        mesh = cartesian_mesh_2d(2, 2)
        sp = H1Space(mesh, 2)
        quad = tensor_quadrature(2, 3)
        ge = GeometryEvaluator(sp, quad)
        pts = ge.physical_points(sp.node_coords)
        assert pts.shape == (4, 9, 2)
        # Zone 0 occupies [0, .5]^2
        z0 = pts[0].reshape(-1, 2)
        assert np.all((z0 > 0) & (z0 < 0.5))

    def test_dimension_mismatch(self):
        mesh = cartesian_mesh_2d(1, 1)
        sp = H1Space(mesh, 1)
        with pytest.raises(ValueError):
            GeometryEvaluator(sp, tensor_quadrature(3, 2))


class TestGeometry3D:
    def test_uniform_hexes(self):
        mesh = cartesian_mesh_3d(2, 2, 2)
        sp = H1Space(mesh, 2)
        quad = tensor_quadrature(3, 4)
        geo = GeometryEvaluator(sp, quad).evaluate(sp.node_coords)
        assert np.allclose(geo.det, 0.125)
        assert geo.check_valid()

    def test_volumes(self):
        mesh = cartesian_mesh_3d(2, 1, 1, extent=((0, 2), (0, 1), (0, 1)))
        sp = H1Space(mesh, 1)
        quad = tensor_quadrature(3, 2)
        vols = GeometryEvaluator(sp, quad).zone_volumes(sp.node_coords)
        assert np.allclose(vols, 1.0)
