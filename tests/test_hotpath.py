"""Hot-path guarantees: allocation discipline, engine parity, phase metering.

Covers the fused workspace engine, the per-stage geometry cache, the
shared-memory zone-parallel executor and the solver's phase breakdown:

* serial (legacy), workspace (fused) and parallel engines agree on a
  randomized curved mesh to the 1e-13 parity budget, and the parallel
  executor is *bitwise* identical to its serially-executed chunking;
* steady-state solver steps allocate no new workspace buffers (buffer
  identities frozen after warmup) and no persistent heap growth under
  tracemalloc;
* cached geometry is read-only — consumers (e.g. the resilience layer's
  fault injector) cannot silently corrupt a stage's shared Jacobians;
* wall_force_s + wall_cg_s + wall_other_s sums to the step wall time.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.fem.geometry import GeometryEvaluator
from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.quadrature import tensor_quadrature
from repro.fem.spaces import H1Space, L2Space
from repro.hydro.corner_force import ForceEngine
from repro.hydro.eos import GammaLawEOS
from repro.hydro.solver import LagrangianHydroSolver, SolverOptions
from repro.hydro.state import HydroState
from repro.hydro.workspace import Workspace
from repro.problems import SodProblem
from repro.runtime.parallel import ZoneParallelExecutor

PARITY = dict(rtol=1e-13, atol=1e-14)


def make_engines(order: int, nz1d: int, fused_only: bool = False):
    """Legacy + fused engines sharing one discretization."""
    mesh = cartesian_mesh_2d(nz1d, nz1d)
    h1 = H1Space(mesh, order)
    l2 = L2Space(mesh, order - 1)
    quad = tensor_quadrature(2, 2 * order)
    geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
    rho0 = np.ones((mesh.nzones, quad.nqp))
    args = (h1, l2, quad, GammaLawEOS(), rho0, geo0)
    fused = ForceEngine(*args, fused=True)
    if fused_only:
        return fused
    return ForceEngine(*args, fused=False), fused


def random_state(h1: H1Space, l2: L2Space, rng) -> HydroState:
    """Random velocity/energy on a randomly curved (but untangled) mesh.

    The perturbation must stay small relative to the high-order node
    spacing or random displacements tangle the zones (det J <= 0).
    """
    return HydroState(
        0.1 * rng.standard_normal((h1.ndof, 2)),
        rng.random(l2.ndof) + 0.5,
        h1.node_coords + 5e-4 * rng.standard_normal((h1.ndof, 2)),
        0.0,
    )


class TestEngineParity:
    @pytest.mark.parametrize("order", [2, 3])
    def test_fused_matches_legacy_on_curved_mesh(self, order, rng):
        legacy, fused = make_engines(order, 6)
        for _ in range(3):  # three independent random states
            state = random_state(legacy.kinematic, legacy.thermodynamic, rng)
            rl = legacy.compute(state)
            rf = fused.compute(state)
            assert rl.valid and rf.valid
            np.testing.assert_allclose(rf.Fz, rl.Fz, **PARITY)
            assert rf.dt_est == pytest.approx(rl.dt_est, rel=1e-13)
            # Shared-helper stages are bitwise identical.
            np.testing.assert_array_equal(rf.geometry.jac, rl.geometry.jac)
            np.testing.assert_array_equal(rf.geometry.det, rl.geometry.det)
            np.testing.assert_array_equal(rf.geometry.adj, rl.geometry.adj)
            np.testing.assert_array_equal(rf.points.rho, rl.points.rho)

    def test_parallel_bitwise_vs_chunked_serial(self, rng):
        _, fused = make_engines(2, 6)
        state = random_state(fused.kinematic, fused.thermodynamic, rng)
        with ZoneParallelExecutor(fused, workers=2) as ex:
            par = ex.compute(state)
            ref = ex.compute_chunked(state)
            # The multiprocessing layer changes scheduling, never bits.
            np.testing.assert_array_equal(par.Fz, ref.Fz)
            assert par.dt_est == ref.dt_est
            assert par.valid == ref.valid
            # And the chunked evaluation matches the fused/serial engines
            # within the parity budget.
            serial = fused.compute(state)
            np.testing.assert_allclose(par.Fz, serial.Fz, **PARITY)
            assert par.dt_est == pytest.approx(serial.dt_est, rel=1e-13)

    def test_parallel_executor_double_buffering(self, rng):
        _, fused = make_engines(2, 4)
        s1 = random_state(fused.kinematic, fused.thermodynamic, rng)
        s2 = random_state(fused.kinematic, fused.thermodynamic, rng)
        with ZoneParallelExecutor(fused, workers=2) as ex:
            r1 = ex.compute(s1)
            fz1 = r1.Fz.copy()
            r2 = ex.compute(s2)
            # r1's buffer survives one further evaluation (RK2's pattern).
            np.testing.assert_array_equal(r1.Fz, fz1)
            assert r2.Fz is not r1.Fz

    def test_parallel_solver_run_matches_serial(self):
        problem = SodProblem()
        with LagrangianHydroSolver(problem, SolverOptions(workers=2)) as par:
            rp = par.run(max_steps=4)
        serial = LagrangianHydroSolver(problem, SolverOptions())
        rs = serial.run(max_steps=4)
        assert rp.steps == rs.steps
        np.testing.assert_allclose(rp.state.v, rs.state.v, rtol=0, atol=1e-12)
        np.testing.assert_allclose(rp.state.e, rs.state.e, rtol=0, atol=1e-12)
        np.testing.assert_allclose(rp.state.x, rs.state.x, rtol=0, atol=1e-12)


class TestAllocationDiscipline:
    def test_workspace_reuses_buffers(self):
        ws = Workspace()
        a = ws.get("a", (4, 4))
        assert ws.get("a", (4, 4)) is a
        assert ws.hits == 1 and ws.misses == 1
        b = ws.get("a", (5, 4))  # shape change is a miss
        assert b is not a and ws.misses == 2
        a2 = ws.get("frozen", (3,))
        a2.setflags(write=False)
        assert ws.get("frozen", (3,)).flags.writeable  # thawed on reuse

    def test_engine_steady_state_buffer_ids_stable(self, rng):
        fused = make_engines(2, 5, fused_only=True)
        states = [
            random_state(fused.kinematic, fused.thermodynamic, rng) for _ in range(2)
        ]
        for i in range(4):  # warm up both Fz slots and both geometry slots
            fused.compute(states[i % 2])
        ids = fused.workspace.buffer_ids()
        misses = fused.workspace.misses
        for i in range(6):
            fused.compute(states[i % 2])
        assert fused.workspace.buffer_ids() == ids
        assert fused.workspace.misses == misses

    def test_solver_steps_no_persistent_allocations(self):
        solver = LagrangianHydroSolver(
            SodProblem(), SolverOptions(energy_every=10**9, record_dt_history=False)
        )
        dt0 = solver.initialize_dt()
        solver._last_dt_est = dt0 / solver.controller.cfl

        def advance():  # one accepted step under the adaptive controller
            dt = solver.controller.propose(solver._last_dt_est, solver.state.t, 1.0)
            while not solver.step(dt):
                dt = solver.controller.reject()

        for _ in range(3):  # warmup: populate every workspace buffer
            advance()
        ids = solver.engine.workspace.buffer_ids()
        misses = solver.engine.workspace.misses
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(3):
            advance()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The step's big arrays (Fz ~ O(100 KB) each, twice per stage)
        # must all be workspace-recycled; what remains is the new state
        # triple plus bookkeeping.
        state_bytes = sum(a.nbytes for a in (solver.state.v, solver.state.e, solver.state.x))
        assert after - before < 4 * state_bytes + 64 * 1024
        assert solver.engine.workspace.buffer_ids() == ids
        assert solver.engine.workspace.misses == misses


class TestSumfactAllocationDiscipline:
    """The sum-factorized hot path keeps the fused engine's discipline:
    after both Fz slots and both geometry-cache slots are warm, steady
    state leases nothing from the arena and allocates nothing persistent
    on the heap."""

    def make_sumfact(self, order: int, nz1d: int):
        from repro.hydro.corner_force import SumfactForceEngine

        mesh = cartesian_mesh_2d(nz1d, nz1d)
        h1 = H1Space(mesh, order)
        l2 = L2Space(mesh, order - 1)
        quad = tensor_quadrature(2, 2 * order)
        geo0 = GeometryEvaluator(h1, quad).evaluate(h1.node_coords)
        rho0 = np.ones((mesh.nzones, quad.nqp))
        return SumfactForceEngine(h1, l2, quad, GammaLawEOS(), rho0, geo0)

    def test_sumfact_steady_state_buffer_ids_stable(self, rng):
        engine = self.make_sumfact(3, 5)
        states = [
            random_state(engine.kinematic, engine.thermodynamic, rng)
            for _ in range(2)
        ]
        for i in range(4):  # warm both T slots and both geometry slots
            engine.compute(states[i % 2])
        ids = engine.workspace.buffer_ids()
        misses = engine.workspace.misses
        arena_allocs = engine.workspace.arena.block_allocations
        for i in range(6):
            engine.compute(states[i % 2])
        assert engine.workspace.buffer_ids() == ids
        assert engine.workspace.misses == misses
        assert engine.workspace.arena.block_allocations == arena_allocs
        assert engine.workspace.arena.live_leases == len(ids)

    def test_sumfact_solver_steps_no_persistent_allocations(self):
        solver = LagrangianHydroSolver(
            SodProblem(),
            SolverOptions(backend="cpu-sumfact", energy_every=10**9,
                          record_dt_history=False),
        )
        dt0 = solver.initialize_dt()
        solver._last_dt_est = dt0 / solver.controller.cfl

        def advance():
            dt = solver.controller.propose(solver._last_dt_est, solver.state.t, 1.0)
            while not solver.step(dt):
                dt = solver.controller.reject()

        for _ in range(3):  # warmup: populate every workspace buffer
            advance()
        ids = solver.engine.workspace.buffer_ids()
        misses = solver.engine.workspace.misses
        arena_allocs = solver.arena.block_allocations
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(3):
            advance()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        state_bytes = sum(
            a.nbytes for a in (solver.state.v, solver.state.e, solver.state.x)
        )
        assert after - before < 4 * state_bytes + 64 * 1024
        assert solver.engine.workspace.buffer_ids() == ids
        assert solver.engine.workspace.misses == misses
        assert solver.arena.block_allocations == arena_allocs


class TestGeometryCacheGuards:
    def test_cached_geometry_is_reused_per_x(self, rng):
        fused = make_engines(2, 4, fused_only=True)
        state = random_state(fused.kinematic, fused.thermodynamic, rng)
        geo1 = fused.point_geometry(state.x)
        geo2 = fused.point_geometry(state.x)
        assert geo1 is geo2  # same x array -> same cached evaluation

    def test_cached_geometry_is_read_only(self, rng):
        fused = make_engines(2, 4, fused_only=True)
        state = random_state(fused.kinematic, fused.thermodynamic, rng)
        result = fused.compute(state)
        geo = result.geometry
        for arr in (geo.jac, geo.det, geo.adj, geo.inv):
            with pytest.raises(ValueError):
                arr[(0,) * arr.ndim] = 0.0

    def test_two_recent_geometries_stay_live(self, rng):
        fused = make_engines(2, 4, fused_only=True)
        s1 = random_state(fused.kinematic, fused.thermodynamic, rng)
        s2 = random_state(fused.kinematic, fused.thermodynamic, rng)
        g1 = fused.point_geometry(s1.x)
        det1 = g1.det.copy()
        g2 = fused.point_geometry(s2.x)
        # Both most-recent geometries are intact (double-buffered slots).
        np.testing.assert_array_equal(g1.det, det1)
        assert fused.point_geometry(s1.x) is g1
        assert fused.point_geometry(s2.x) is g2


class TestPhaseMetering:
    def test_wall_other_is_populated_and_sums(self):
        solver = LagrangianHydroSolver(SodProblem(), SolverOptions())
        solver.run(max_steps=3)
        w = solver.workload
        assert w.wall_force_s > 0
        assert w.wall_cg_s > 0
        assert w.wall_other_s > 0
        phases = solver.timers.to_dict()
        assert {"force", "cg", "other"} <= set(phases)
        assert phases["force"]["seconds"] == pytest.approx(w.wall_force_s)
        assert phases["other"]["seconds"] == pytest.approx(w.wall_other_s)
        assert sum(p["fraction"] for p in phases.values()) == pytest.approx(1.0)

    def test_scatter_add_out_matches_allocating(self, rng):
        mesh = cartesian_mesh_2d(3, 3)
        h1 = H1Space(mesh, 2)
        zvals = rng.standard_normal((mesh.nzones, h1.ndof_per_zone, 2))
        expect = h1.scatter_add(zvals)
        buf = np.full((h1.ndof, 2), np.nan)
        got = h1.scatter_add(zvals, out=buf)
        assert got is buf
        np.testing.assert_array_equal(got, expect)


class TestCli:
    def test_run_with_workers(self, capsys):
        from repro.cli import main

        rc = main(["run", "sod", "--workers", "2", "--max-steps", "3",
                   "--t-final", "0.01"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase wall time" in out and "2 workers" in out

    def test_workers_compose_with_ranks(self, capsys):
        from repro.cli import main

        rc = main(["run", "sod", "--workers", "2", "--ranks", "2",
                   "--max-steps", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated MPI traffic" in out

    def test_bench_hotpath_quick(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bench.json"
        rc = main(["bench", "hotpath", "--quick", "--workers", "1",
                   "--json", str(path)])
        assert rc == 0
        import json

        records = json.loads(path.read_text())
        assert len(records) == 1
        case = records[0]["cases"][0]
        assert case["fused_speedup"] > 1.0
        assert case["fused_rel_err"] < 1e-13


class TestAppendBenchRecord:
    """The shared BENCH_*.json append helper (atomic temp+rename)."""

    def test_appends_and_timestamps(self, tmp_path):
        import json

        from repro.analysis.record import append_bench_record

        path = tmp_path / "BENCH_x.json"
        append_bench_record({"a": 1}, path)
        append_bench_record({"b": 2}, path)
        records = json.loads(path.read_text())
        assert [("a" in r, "b" in r) for r in records] == [
            (True, False), (False, True)]
        assert all("timestamp" in r for r in records)
        # No leftover temp file from the atomic rename.
        assert list(tmp_path.iterdir()) == [path]

    def test_missing_file_starts_fresh(self, tmp_path):
        import json

        from repro.analysis.record import append_bench_record

        path = tmp_path / "new" / "BENCH_x.json"
        append_bench_record({"a": 1}, path)
        assert len(json.loads(path.read_text())) == 1

    def test_corrupt_history_warns_and_recovers(self, tmp_path):
        import json

        from repro.analysis.record import append_bench_record

        path = tmp_path / "BENCH_x.json"
        path.write_text("{ not json !!!")
        with pytest.warns(UserWarning, match="unreadable"):
            append_bench_record({"a": 1}, path)
        append_bench_record({"b": 2}, path)
        assert len(json.loads(path.read_text())) == 2

    def test_wraps_legacy_non_list_history(self, tmp_path):
        import json

        from repro.analysis.record import append_bench_record

        path = tmp_path / "BENCH_x.json"
        path.write_text('{"old": "single-record style"}')
        append_bench_record({"new": 1}, path)
        records = json.loads(path.read_text())
        assert records[0] == {"old": "single-record style"}
        assert records[1]["new"] == 1
