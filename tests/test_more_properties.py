"""Additional property-based suites across the substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.mesh import cartesian_mesh_2d
from repro.fem.refinement import refine_uniform
from repro.fem.spaces import H1Space, L2Space
from repro.gpu import execute_kernel, get_gpu
from repro.gpu.execution import KernelCost
from repro.runtime.mpi_sim import CommCostModel, SimulatedComm
from repro.tuning import Autotuner, ParamSpace


class TestRefinementProperties:
    @given(
        nx=st.integers(1, 4),
        ny=st.integers(1, 4),
        w=st.floats(0.5, 3.0),
        h=st.floats(0.5, 3.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_refined_mesh_conserves_area(self, nx, ny, w, h):
        from repro.fem.geometry import GeometryEvaluator
        from repro.fem.quadrature import tensor_quadrature

        base = cartesian_mesh_2d(nx, ny, extent=((0.0, w), (0.0, h)))
        fine = refine_uniform(base)
        sp = H1Space(fine, 1)
        quad = tensor_quadrature(2, 2)
        area = GeometryEvaluator(sp, quad).zone_volumes(sp.node_coords).sum()
        assert area == pytest.approx(w * h, rel=1e-10)

    @given(nx=st.integers(1, 3), ny=st.integers(1, 3), levels=st.integers(0, 2))
    @settings(max_examples=15, deadline=None)
    def test_zone_count_growth(self, nx, ny, levels):
        base = cartesian_mesh_2d(nx, ny)
        fine = refine_uniform(base, levels)
        assert fine.nzones == nx * ny * 4**levels

    @given(order=st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_h1_dofs_match_structured_formula(self, order):
        """Refinement reproduces the structured dof count even though
        the refined connectivity is unstructured."""
        fine = refine_uniform(cartesian_mesh_2d(2, 2))
        sp = H1Space(fine, order)
        assert sp.ndof == (4 * order + 1) ** 2


class TestCommProperties:
    @given(
        nranks=st.integers(1, 8),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_min_is_global_min(self, nranks, seed):
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal(nranks).tolist()
        comm = SimulatedComm(nranks)
        assert comm.allreduce_min(vals) == min(vals)

    @given(nranks=st.integers(2, 16), nbytes=st.floats(8, 1e6))
    @settings(max_examples=25, deadline=None)
    def test_allreduce_cost_monotone_in_ranks(self, nranks, nbytes):
        m = CommCostModel()
        assert m.allreduce_time(nranks, nbytes) >= m.allreduce_time(max(nranks // 2, 1), nbytes)

    @given(seed=st.integers(0, 2**31), nranks=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_allreduce_sum_order_invariant(self, seed, nranks):
        """The collective result is independent of contribution order
        up to roundoff (commutativity of the reduction)."""
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(7) for _ in range(nranks)]
        comm = SimulatedComm(nranks)
        a = comm.allreduce_sum(arrays)
        b = comm.allreduce_sum(arrays[::-1])
        assert np.allclose(a, b, atol=1e-12)


class TestExecutionProperties:
    K20 = get_gpu("K20")

    @given(
        flops=st.floats(1e6, 1e11),
        dram=st.floats(1e4, 1e9),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_time_positive_and_rates_bounded(self, flops, dram, seed):
        c = KernelCost(name="k", flops=flops, dram_bytes=dram,
                       threads_per_block=256, blocks=64)
        t = execute_kernel(self.K20, c)
        assert t.time_s > 0
        assert t.gflops <= self.K20.peak_dp_gflops * 1.001
        assert t.bandwidth_gbs["dram"] <= self.K20.mem_bandwidth_gbs * 1.001

    @given(flops=st.floats(1e7, 1e10), factor=st.floats(1.1, 8.0))
    @settings(max_examples=25, deadline=None)
    def test_more_work_never_faster(self, flops, factor):
        base = KernelCost(name="k", flops=flops, dram_bytes=flops / 4,
                          threads_per_block=256, blocks=64)
        t1 = execute_kernel(self.K20, base)
        t2 = execute_kernel(self.K20, base.scaled(factor))
        assert t2.time_s >= t1.time_s

    @given(flops=st.floats(1e7, 1e10))
    @settings(max_examples=20, deadline=None)
    def test_scaling_work_is_homogeneous(self, flops):
        """Twice the work takes at most twice-plus-overhead the time."""
        base = KernelCost(name="k", flops=flops, dram_bytes=flops / 2,
                          threads_per_block=256, blocks=64)
        t1 = execute_kernel(self.K20, base).time_s
        t2 = execute_kernel(self.K20, base.scaled(2.0)).time_s
        assert t2 <= 2.0 * t1 + 1e-5


class TestAutotunerProperties:
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(2, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_noiseless_tuning_finds_true_optimum(self, seed, n):
        rng = np.random.default_rng(seed)
        times = {i: float(t) for i, t in enumerate(rng.uniform(0.5, 2.0, n))}
        tuner = Autotuner(lambda c: times[c["i"]], ParamSpace(i=list(range(n))),
                          steps_per_period=1)
        best = tuner.tune().best["i"]
        assert times[best] == min(times.values())

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_constraints_never_select_infeasible(self, seed):
        rng = np.random.default_rng(seed)
        feasible = set(rng.choice(10, size=5, replace=False).tolist())
        space = ParamSpace(i=list(range(10))).constrain(lambda c: c["i"] in feasible)
        tuner = Autotuner(lambda c: 1.0 + c["i"] * 0.01, space, steps_per_period=1)
        assert tuner.tune().best["i"] in feasible


class TestSpacesProperties:
    @given(
        nx=st.integers(1, 4),
        ny=st.integers(1, 4),
        order=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_h1_dof_count_formula(self, nx, ny, order):
        sp = H1Space(cartesian_mesh_2d(nx, ny), order)
        assert sp.ndof == (order * nx + 1) * (order * ny + 1)

    @given(
        nx=st.integers(1, 4),
        ny=st.integers(1, 4),
        order=st.integers(0, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_l2_dof_count_formula(self, nx, ny, order):
        sp = L2Space(cartesian_mesh_2d(nx, ny), order)
        assert sp.ndof == nx * ny * (order + 1) ** 2

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_gather_scatter_roundtrip_on_partition(self, seed):
        """scatter_add(gather(f)) multiplies each dof by its zone
        multiplicity — gather/scatter bookkeeping is exact."""
        rng = np.random.default_rng(seed)
        sp = H1Space(cartesian_mesh_2d(3, 2), 2)
        f = rng.standard_normal(sp.ndof)
        mult = np.zeros(sp.ndof)
        np.add.at(mult, sp.ldof.reshape(-1), 1.0)
        assert np.allclose(sp.scatter_add(sp.gather(f)), mult * f, atol=1e-12)
