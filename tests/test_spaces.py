"""Tests for H1/L2 finite element spaces."""

import numpy as np
import pytest

from repro.fem.mesh import cartesian_mesh_2d, cartesian_mesh_3d
from repro.fem.spaces import H1Space, L2Space


class TestH1Space:
    @pytest.mark.parametrize(
        "nx,ny,order,expected",
        [(2, 2, 1, 9), (2, 2, 2, 25), (3, 2, 2, 35), (1, 1, 4, 25)],
    )
    def test_ndof_2d(self, nx, ny, order, expected):
        mesh = cartesian_mesh_2d(nx, ny)
        assert H1Space(mesh, order).ndof == expected

    def test_ndof_3d(self):
        mesh = cartesian_mesh_3d(2, 2, 2)
        # Q2 on a 2^3 grid: (2*2+1)^3 = 125 nodes
        assert H1Space(mesh, 2).ndof == 125

    def test_paper_dof_counts_per_zone(self):
        """3D Q2 zone has 27 scalar / 81 vector kinematic dofs; Q4 has
        125 / 375 — the matrix sizes in Section 3.2/Table 4."""
        mesh = cartesian_mesh_3d(1, 1, 1)
        assert H1Space(mesh, 2).ndof_per_zone * 3 == 81
        assert H1Space(mesh, 4).ndof_per_zone * 3 == 375

    def test_shared_dofs_are_unified(self):
        mesh = cartesian_mesh_2d(2, 1)
        sp = H1Space(mesh, 2)
        # The two zones share an edge: 3 shared nodes at order 2.
        all_dofs = set(sp.ldof[0]) | set(sp.ldof[1])
        assert len(all_dofs) == sp.ndof
        shared = set(sp.ldof[0]) & set(sp.ldof[1])
        assert len(shared) == 3

    def test_gather_scatter_adjoint(self, rng):
        mesh = cartesian_mesh_2d(3, 2)
        sp = H1Space(mesh, 2)
        g = rng.standard_normal(sp.ndof)
        z = rng.standard_normal((mesh.nzones, sp.ndof_per_zone))
        # <gather(g), z> == <g, scatter_add(z)>
        lhs = np.sum(sp.gather(g) * z)
        rhs = np.sum(g * sp.scatter_add(z))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_gather_vector_field(self, rng):
        mesh = cartesian_mesh_2d(2, 2)
        sp = H1Space(mesh, 1)
        f = rng.standard_normal((sp.ndof, 2))
        gz = sp.gather(f)
        assert gz.shape == (4, 4, 2)
        assert np.allclose(gz[0, 0], f[sp.ldof[0, 0]])

    def test_node_coords_match_mesh_vertices_q1(self):
        mesh = cartesian_mesh_2d(2, 2)
        sp = H1Space(mesh, 1)
        # Q1 nodes are exactly the vertices (possibly reordered).
        ours = set(map(tuple, np.round(sp.node_coords, 12)))
        verts = set(map(tuple, np.round(mesh.verts, 12)))
        assert ours == verts

    def test_boundary_dofs_count(self):
        mesh = cartesian_mesh_2d(2, 2)
        sp = H1Space(mesh, 2)
        b = sp.boundary_dofs()
        assert b.size == 16  # 5x5 grid of nodes, boundary ring has 16

    def test_boundary_plane(self):
        mesh = cartesian_mesh_2d(2, 2)
        sp = H1Space(mesh, 2)
        left = sp.boundary_dofs_on_plane(0, 0.0)
        assert left.size == 5
        assert np.allclose(sp.node_coords[left, 0], 0.0)

    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            H1Space(cartesian_mesh_2d(1, 1), 0)

    def test_nvdof(self):
        mesh = cartesian_mesh_2d(2, 2)
        sp = H1Space(mesh, 1)
        assert sp.nvdof == 2 * sp.ndof


class TestL2Space:
    def test_ndof(self):
        mesh = cartesian_mesh_2d(3, 2)
        sp = L2Space(mesh, 1)
        assert sp.ndof == 6 * 4
        assert sp.ndof_per_zone == 4

    def test_q0(self):
        mesh = cartesian_mesh_2d(2, 2)
        sp = L2Space(mesh, 0)
        assert sp.ndof == 4

    def test_no_sharing(self):
        mesh = cartesian_mesh_2d(2, 1)
        sp = L2Space(mesh, 1)
        assert len(set(sp.ldof[0]) & set(sp.ldof[1])) == 0

    def test_gather_scatter_roundtrip(self, rng):
        mesh = cartesian_mesh_2d(2, 2)
        sp = L2Space(mesh, 2)
        f = rng.standard_normal(sp.ndof)
        assert np.allclose(sp.scatter(sp.gather(f)), f)

    def test_paper_thermo_dof_counts(self):
        """3D Q1 thermo zone: 8 dofs (the 81x8 Fz of Table 4)."""
        mesh = cartesian_mesh_3d(1, 1, 1)
        assert L2Space(mesh, 1).ndof_per_zone == 8
        assert L2Space(mesh, 3).ndof_per_zone == 64
