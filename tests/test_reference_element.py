"""Tests for Qk reference elements."""

import numpy as np
import pytest

from repro.fem.quadrature import tensor_quadrature
from repro.fem.reference_element import ReferenceElement


class TestReferenceElement:
    @pytest.mark.parametrize("dim,order,ndof", [(1, 2, 3), (2, 2, 9), (3, 2, 27), (2, 4, 25), (3, 4, 125), (2, 0, 1)])
    def test_ndof(self, dim, order, ndof):
        assert ReferenceElement(dim, order).ndof == ndof

    def test_paper_table_shapes(self):
        """3D Q2-Q1 kinematic grad table is 81x64 (as vector dofs);
        Q4-Q3 is 375x512 — the sizes quoted in Section 3.2.1."""
        q2 = ReferenceElement(3, 2)
        quad4 = tensor_quadrature(3, 4)
        grad = q2.tabulate_gradW(quad4)
        assert grad.shape == (64, 27, 3)  # 27*3 = 81 vector rows
        assert 27 * 3 == 81
        q4 = ReferenceElement(3, 4)
        quad8 = tensor_quadrature(3, 8)
        grad4 = q4.tabulate_gradW(quad8)
        assert grad4.shape == (512, 125, 3)  # 125*3 = 375
        assert 125 * 3 == 375

    @pytest.mark.parametrize("dim,order", [(1, 1), (1, 3), (2, 1), (2, 3), (3, 1), (3, 2)])
    def test_partition_of_unity(self, dim, order):
        el = ReferenceElement(dim, order)
        rng = np.random.default_rng(0)
        pts = rng.random((20, dim))
        vals = el.tabulate(pts)
        assert vals.shape == (20, el.ndof)
        assert np.allclose(vals.sum(axis=1), 1.0, atol=1e-12)

    @pytest.mark.parametrize("dim,order", [(2, 1), (2, 2), (3, 1), (3, 2)])
    def test_gradients_sum_to_zero(self, dim, order):
        el = ReferenceElement(dim, order)
        rng = np.random.default_rng(1)
        pts = rng.random((15, dim))
        grads = el.tabulate_grad(pts)
        assert grads.shape == (15, el.ndof, dim)
        assert np.allclose(grads.sum(axis=1), 0.0, atol=1e-11)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_kronecker_at_dof_nodes(self, dim):
        el = ReferenceElement(dim, 2)
        vals = el.tabulate(el.dof_coords)
        assert np.allclose(vals, np.eye(el.ndof), atol=1e-12)

    def test_gradient_matches_finite_difference(self):
        el = ReferenceElement(2, 3)
        rng = np.random.default_rng(2)
        pts = rng.uniform(0.1, 0.9, (5, 2))
        grads = el.tabulate_grad(pts)
        h = 1e-6
        for d in range(2):
            shift = np.zeros(2)
            shift[d] = h
            fd = (el.tabulate(pts + shift) - el.tabulate(pts - shift)) / (2 * h)
            assert np.allclose(grads[:, :, d], fd, atol=1e-6)

    def test_reproduces_coordinate_functions(self):
        """Interpolating f(x,y) = x at the nodes reproduces x exactly."""
        el = ReferenceElement(2, 2)
        rng = np.random.default_rng(3)
        pts = rng.random((10, 2))
        nodal = el.dof_coords[:, 0]
        assert np.allclose(el.tabulate(pts) @ nodal, pts[:, 0], atol=1e-13)

    def test_tabulate_B_shape_and_transpose(self):
        el = ReferenceElement(3, 1)  # thermodynamic Q1
        quad = tensor_quadrature(3, 4)
        B = el.tabulate_B(quad)
        assert B.shape == (8, 64)  # the paper's 81x8 Fz has 8 columns
        assert np.allclose(B.T, el.tabulate(quad.points))

    def test_q0_constant_element(self):
        el = ReferenceElement(2, 0)
        pts = np.random.default_rng(4).random((7, 2))
        assert np.allclose(el.tabulate(pts), 1.0)
        assert np.allclose(el.tabulate_grad(pts), 0.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ReferenceElement(4, 1)
        with pytest.raises(ValueError):
            ReferenceElement(2, -1)

    def test_dof_coords_ordering_x_fastest(self):
        el = ReferenceElement(2, 1)
        expected = np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=float)
        assert np.allclose(el.dof_coords, expected)
