"""Tests for cluster scaling models and analysis helpers."""

import numpy as np
import pytest

from repro.analysis.profiles import cpu_profile, kernel_breakdown
from repro.analysis.report import Series, Table, paper_vs_measured
from repro.cluster import SHANNON, TITAN, strong_scaling, weak_scaling
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.kernels import FEConfig


class TestMachines:
    def test_titan_spec(self):
        assert TITAN.cpu.cores == 16
        assert TITAN.gpu.name == "K20m"
        assert TITAN.max_nodes >= 4096

    def test_shannon_spec(self):
        assert SHANNON.cpu_packages_per_node == 2
        assert SHANNON.gpus_per_node == 2
        assert SHANNON.max_nodes == 30


class TestWeakScaling:
    NODES = [8, 64, 512, 4096]

    def test_fig12_endpoints(self):
        """Fitted endpoints: 0.85 s at 8 nodes, 1.83 s at 4096 (5 cycles)."""
        pts = weak_scaling(
            TITAN, self.NODES, node_cycle_s=0.1046, sync_amplification_s=0.0218
        )
        assert pts[0].time_s == pytest.approx(0.85, rel=0.03)
        assert pts[-1].time_s == pytest.approx(1.83, rel=0.03)

    def test_log_growth_shape(self):
        """Interior points follow the log curve (monotone, concave)."""
        pts = weak_scaling(TITAN, self.NODES)
        times = [p.time_s for p in pts]
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
        growth = [t2 - t1 for t1, t2 in zip(times, times[1:])]
        # log2 steps are equal (8x nodes each time): increments constant.
        assert growth[1] == pytest.approx(growth[0], rel=0.15)

    def test_efficiency_degrades(self):
        pts = weak_scaling(TITAN, self.NODES)
        assert pts[0].efficiency == 1.0
        assert pts[-1].efficiency < pts[0].efficiency

    def test_validation(self):
        with pytest.raises(ValueError):
            weak_scaling(TITAN, [])
        with pytest.raises(ValueError):
            weak_scaling(SHANNON, [100])


class TestStrongScaling:
    def test_fig13_near_linear(self):
        """Strong scaling on Shannon is close to linear up to 16 nodes."""
        pts = strong_scaling(SHANNON, total_zones=32**3, node_counts=[1, 2, 4, 8, 16])
        assert pts[0].efficiency == pytest.approx(1.0)
        assert all(p.efficiency > 0.6 for p in pts)
        times = [p.time_s for p in pts]
        assert all(t2 < t1 for t1, t2 in zip(times, times[1:]))

    def test_more_nodes_than_zones_rejected(self):
        with pytest.raises(ValueError):
            strong_scaling(SHANNON, total_zones=8, node_counts=[16])


class TestProfiles:
    def test_cpu_profile_table1_shape(self):
        cfg = FEConfig(dim=3, order=2, nzones=8**3)
        prof = cpu_profile(cfg, get_cpu("X5660"), steps=100, pcg_iterations=30)
        assert 0.5 <= prof.corner_force_frac <= 0.85
        assert prof.total_s > prof.corner_force_s + prof.cg_solver_s
        assert "Q2-Q1" in prof.row()

    def test_corner_force_cost_grows_superlinearly_with_order(self):
        """'The corner force kernel consumes 55%-75% of total time ...
        increasing with the order.' Our model reproduces the robust
        part of this claim — the corner force dominates at every order
        and its absolute cost grows superlinearly with k — while the
        share itself stays approximately flat instead of rising (our CG
        cost grows with the (k+1)^4 mass stencil; see EXPERIMENTS.md).
        """
        profs = {
            k: cpu_profile(FEConfig(2, k, 16**2), get_cpu("X5660"), 10)
            for k in (2, 3, 4)
        }
        for k, p in profs.items():
            assert p.corner_force_frac > 0.55, k
        t = [profs[k].corner_force_s for k in (2, 3, 4)]
        assert t[1] > 1.5 * t[0]
        assert t[2] > 1.5 * t[1]

    def test_kernel_breakdown_optimized_spmv_dominates(self):
        """Figure 6 right: CsrMv dominates after optimization."""
        cfg = FEConfig(dim=3, order=2, nzones=16**3)
        shares = kernel_breakdown(cfg, get_gpu("K20"), "optimized", pcg_iterations=30)
        assert shares[0].name.startswith("csrMv")
        assert shares[0].share > 0.4

    def test_kernel_breakdown_base_quadloop_dominates(self):
        """Figure 6 left: the monolithic kernel dominates the base."""
        cfg = FEConfig(dim=3, order=2, nzones=16**3)
        shares = kernel_breakdown(cfg, get_gpu("K20"), "base", pcg_iterations=30)
        assert shares[0].name.startswith("kernel_loop_quadrature_point")
        assert shares[0].share > 0.4

    def test_spmv_time_same_in_both(self):
        """'The CsrMv_ci_kernel time remains the same in the two
        implementations.'"""
        cfg = FEConfig(dim=3, order=2, nzones=16**3)
        base = {s.name: s.time_s for s in kernel_breakdown(cfg, get_gpu("K20"), "base")}
        opt = {s.name: s.time_s for s in kernel_breakdown(cfg, get_gpu("K20"), "optimized")}
        assert base["csrMv_ci_kernel"] == pytest.approx(opt["csrMv_ci_kernel"], rel=1e-9)


class TestReport:
    def test_table_render(self):
        t = Table("T", ["a", "b"])
        t.add("x", 1.5)
        out = t.render()
        assert "T" in out and "x" in out and "1.5" in out

    def test_table_width_check(self):
        t = Table("T", ["a"])
        with pytest.raises(ValueError):
            t.add("x", "y")

    def test_series_render(self):
        s = Series("speedup")
        s.add(1, 1.9)
        s.add(2, 2.5)
        assert "(1, 1.9)" in s.render()

    def test_paper_vs_measured(self):
        t = paper_vs_measured("X", [("speedup", 1.9, 2.08)])
        out = t.render()
        assert "paper" in out and "measured" in out and "2.08" in out
