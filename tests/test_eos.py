"""Tests for equations of state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hydro.eos import GammaLawEOS, StiffenedGasEOS


class TestGammaLaw:
    def test_pressure(self):
        eos = GammaLawEOS(gamma=1.4)
        assert eos.pressure(2.0, 3.0) == pytest.approx(0.4 * 2.0 * 3.0)

    def test_sound_speed(self):
        eos = GammaLawEOS(gamma=1.4)
        assert eos.sound_speed(1.0, 1.0) == pytest.approx(np.sqrt(1.4 * 0.4))

    def test_negative_energy_floored(self):
        eos = GammaLawEOS()
        assert eos.pressure(1.0, -5.0) == 0.0
        assert eos.sound_speed(1.0, -5.0) == 0.0

    def test_roundtrip(self):
        eos = GammaLawEOS(gamma=5 / 3)
        p = eos.pressure(2.0, 0.7)
        assert eos.energy_from_pressure(2.0, p) == pytest.approx(0.7)

    def test_per_zone_gamma_broadcast(self):
        gamma = np.array([[1.4], [1.5]])  # (nzones=2, 1)
        eos = GammaLawEOS(gamma=gamma)
        rho = np.ones((2, 3))
        e = np.ones((2, 3))
        p = eos.pressure(rho, e)
        assert np.allclose(p[0], 0.4)
        assert np.allclose(p[1], 0.5)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(ValueError):
            GammaLawEOS(gamma=1.0)
        with pytest.raises(ValueError):
            GammaLawEOS(gamma=np.array([1.4, 0.9]))

    @given(
        rho=st.floats(0.01, 100.0),
        e=st.floats(0.0, 1000.0),
        gamma=st.floats(1.01, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_thermodynamic_consistency(self, rho, e, gamma):
        """p >= 0, c_s^2 = gamma p / rho for the gamma law."""
        eos = GammaLawEOS(gamma=gamma)
        p = float(eos.pressure(rho, e))
        cs = float(eos.sound_speed(rho, e))
        assert p >= 0.0
        assert cs * cs == pytest.approx(gamma * p / rho, rel=1e-10, abs=1e-12)


class TestStiffenedGas:
    def test_reduces_to_gamma_law(self):
        sg = StiffenedGasEOS(gamma=1.4, p_inf=0.0)
        gl = GammaLawEOS(gamma=1.4)
        assert sg.pressure(2.0, 3.0) == pytest.approx(float(gl.pressure(2.0, 3.0)))

    def test_p_inf_shifts_pressure(self):
        sg = StiffenedGasEOS(gamma=4.4, p_inf=1.0)
        assert sg.pressure(1.0, 1.0) == pytest.approx(3.4 - 4.4)

    def test_sound_speed_nonnegative(self):
        sg = StiffenedGasEOS(gamma=4.4, p_inf=2.0)
        assert sg.sound_speed(1.0, 0.0) >= 0.0

    def test_roundtrip(self):
        sg = StiffenedGasEOS(gamma=2.0, p_inf=0.5)
        p = sg.pressure(3.0, 1.2)
        assert sg.energy_from_pressure(3.0, p) == pytest.approx(1.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            StiffenedGasEOS(gamma=0.5)
        with pytest.raises(ValueError):
            StiffenedGasEOS(p_inf=-1.0)
