"""Tests for the tensor artificial viscosity."""

import numpy as np
import pytest

from repro.hydro.viscosity import (
    ViscosityCoefficients,
    directional_length,
    tensor_viscosity,
)


def uniform_jac(n, h, dim):
    return np.broadcast_to(h * np.eye(dim), (n, dim, dim)).copy()


class TestDirectionalLength:
    def test_isotropic_jacobian(self):
        jac = uniform_jac(4, 0.25, 2)
        dirs = np.broadcast_to(np.eye(2), (4, 2, 2)).copy()
        lengths = directional_length(jac, dirs, order=2)
        assert np.allclose(lengths, 0.25 / 2)

    def test_anisotropic_jacobian(self):
        jac = np.diag([0.5, 0.125])[None]
        dirs = np.eye(2)[None]
        lengths = directional_length(jac, dirs, order=1)
        assert np.allclose(lengths[0], [0.5, 0.125])

    def test_rotated_direction(self):
        """Length along a diagonal of a unit-square zone is sqrt(2)/2 *
        correction — verified against direct computation."""
        jac = np.eye(2)[None]
        d = np.array([[1, 0], [0, 1.0]])  # columns are directions
        lengths = directional_length(jac, d[None], order=1)
        assert np.allclose(lengths, 1.0)


class TestTensorViscosity:
    def test_disabled_returns_zero(self):
        gv = np.random.default_rng(0).standard_normal((5, 2, 2))
        jac = uniform_jac(5, 0.1, 2)
        sigma, mu = tensor_viscosity(
            gv, jac, np.ones(5), np.ones(5), 2, ViscosityCoefficients(enabled=False)
        )
        assert np.allclose(sigma, 0.0)
        assert np.allclose(mu, 0.0)

    def test_pure_expansion_no_viscosity(self):
        """Uniform expansion (positive eigenvalues) triggers nothing."""
        gv = np.broadcast_to(0.5 * np.eye(2), (3, 2, 2)).copy()
        jac = uniform_jac(3, 0.25, 2)
        sigma, mu = tensor_viscosity(
            gv, jac, np.ones(3), np.ones(3), 2, ViscosityCoefficients()
        )
        assert np.allclose(sigma, 0.0)
        assert np.allclose(mu, 0.0)

    def test_uniform_compression_isotropic_stress(self):
        gv = np.broadcast_to(-1.0 * np.eye(2), (2, 2, 2)).copy()
        jac = uniform_jac(2, 0.25, 2)
        coeffs = ViscosityCoefficients(q1=0.5, q2=2.0)
        sigma, mu = tensor_viscosity(gv, jac, np.ones(2), np.ones(2), 1, coeffs)
        # lambda = -1 in both directions; l = 0.25
        l = 0.25
        mu_expect = 1.0 * (2.0 * l * l * 1.0 + 0.5 * l * 1.0)
        assert np.allclose(mu, mu_expect)
        # sigma = mu * lambda * I
        assert np.allclose(sigma, -mu_expect * np.eye(2), atol=1e-12)

    def test_directional_compression(self):
        """1D compression only produces stress along that direction."""
        gv = np.zeros((1, 2, 2))
        gv[0, 0, 0] = -2.0  # compress in x only
        jac = uniform_jac(1, 0.5, 2)
        sigma, _ = tensor_viscosity(
            gv, jac, np.ones(1), np.zeros(1), 1, ViscosityCoefficients(q1=0.0, q2=1.0)
        )
        assert sigma[0, 0, 0] < 0.0
        assert sigma[0, 1, 1] == pytest.approx(0.0, abs=1e-14)
        assert sigma[0, 0, 1] == pytest.approx(0.0, abs=1e-14)

    def test_symmetry_of_stress(self, rng):
        gv = rng.standard_normal((10, 3, 3))
        jac = uniform_jac(10, 0.3, 3)
        sigma, _ = tensor_viscosity(
            gv, jac, np.ones(10), np.ones(10), 2, ViscosityCoefficients()
        )
        assert np.allclose(sigma, np.swapaxes(sigma, -1, -2), atol=1e-12)

    def test_shear_no_normal_viscosity_when_traceless(self, rng):
        """Pure rotation (antisymmetric grad v) has zero strain -> zero."""
        omega = np.array([[0.0, 1.0], [-1.0, 0.0]])
        sigma, mu = tensor_viscosity(
            omega[None], uniform_jac(1, 0.25, 2), np.ones(1), np.ones(1), 1,
            ViscosityCoefficients(),
        )
        assert np.allclose(sigma, 0.0, atol=1e-12)
        assert np.allclose(mu, 0.0, atol=1e-14)

    def test_scales_with_density(self, rng):
        gv = np.broadcast_to(-np.eye(2), (2, 2, 2)).copy()
        jac = uniform_jac(2, 0.25, 2)
        rho = np.array([1.0, 4.0])
        _, mu = tensor_viscosity(gv, jac, rho, np.ones(2), 1, ViscosityCoefficients())
        assert mu[1] == pytest.approx(4.0 * mu[0])

    def test_3d_uniform_compression(self):
        gv = np.broadcast_to(-np.eye(3), (1, 3, 3)).copy()
        jac = uniform_jac(1, 0.2, 3)
        sigma, mu = tensor_viscosity(
            gv, jac, np.ones(1), np.ones(1), 1, ViscosityCoefficients()
        )
        assert np.allclose(sigma[0], sigma[0, 0, 0] * np.eye(3), atol=1e-12)
        assert sigma[0, 0, 0] < 0

    def test_rejects_negative_coeffs(self):
        with pytest.raises(ValueError):
            ViscosityCoefficients(q1=-1.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            tensor_viscosity(
                np.zeros((1, 1, 1)), np.ones((1, 1, 1)), np.ones(1), np.ones(1), 1,
                ViscosityCoefficients(),
            )
