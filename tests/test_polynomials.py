"""Tests for 1D polynomial machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.polynomials import (
    LagrangeBasis1D,
    equispaced_points,
    gauss_legendre,
    gauss_lobatto_points,
    legendre,
    legendre_deriv,
)


class TestLegendre:
    def test_low_orders_explicit(self):
        x = np.linspace(-1, 1, 11)
        assert np.allclose(legendre(0, x), 1.0)
        assert np.allclose(legendre(1, x), x)
        assert np.allclose(legendre(2, x), 0.5 * (3 * x**2 - 1))
        assert np.allclose(legendre(3, x), 0.5 * (5 * x**3 - 3 * x))

    def test_endpoint_values(self):
        for n in range(10):
            assert legendre(n, np.array([1.0]))[0] == pytest.approx(1.0)
            assert legendre(n, np.array([-1.0]))[0] == pytest.approx((-1.0) ** n)

    def test_deriv_matches_numeric(self):
        x = np.linspace(-0.95, 0.95, 17)
        h = 1e-6
        for n in range(1, 8):
            numeric = (legendre(n, x + h) - legendre(n, x - h)) / (2 * h)
            assert np.allclose(legendre_deriv(n, x), numeric, atol=1e-6)

    def test_deriv_endpoints(self):
        for n in range(1, 8):
            expect = n * (n + 1) / 2
            assert legendre_deriv(n, np.array([1.0]))[0] == pytest.approx(expect)
            assert legendre_deriv(n, np.array([-1.0]))[0] == pytest.approx(
                expect * (-1.0) ** (n - 1)
            )

    def test_orthogonality(self):
        x, w = gauss_legendre(20)
        # map back to [-1, 1]
        xm = 2 * x - 1
        wm = 2 * w
        for m in range(6):
            for n in range(6):
                integral = np.sum(wm * legendre(m, xm) * legendre(n, xm))
                expect = 2.0 / (2 * n + 1) if m == n else 0.0
                assert integral == pytest.approx(expect, abs=1e-13)


class TestGaussLegendre:
    @pytest.mark.parametrize("npts", [1, 2, 3, 5, 8, 16, 32])
    def test_weights_sum_to_one(self, npts):
        x, w = gauss_legendre(npts)
        assert w.sum() == pytest.approx(1.0, abs=1e-14)
        assert np.all((x > 0) & (x < 1))
        assert np.all(np.diff(x) > 0)

    @pytest.mark.parametrize("npts", [1, 2, 3, 4, 6])
    def test_exact_for_polynomials(self, npts):
        """n-point Gauss integrates degree 2n-1 exactly on [0, 1]."""
        x, w = gauss_legendre(npts)
        for deg in range(2 * npts):
            assert np.sum(w * x**deg) == pytest.approx(1.0 / (deg + 1), rel=1e-13)

    def test_rejects_zero_points(self):
        with pytest.raises(ValueError):
            gauss_legendre(0)

    def test_symmetry(self):
        x, w = gauss_legendre(7)
        assert np.allclose(x + x[::-1], 1.0)
        assert np.allclose(w, w[::-1])


class TestLobatto:
    @pytest.mark.parametrize("npts", [2, 3, 4, 5, 9])
    def test_endpoints_included(self, npts):
        pts = gauss_lobatto_points(npts)
        assert pts[0] == pytest.approx(0.0, abs=1e-15)
        assert pts[-1] == pytest.approx(1.0, abs=1e-15)
        assert np.all(np.diff(pts) > 0)
        assert pts.size == npts

    def test_q1_is_endpoints(self):
        assert np.allclose(gauss_lobatto_points(2), [0.0, 1.0])

    def test_q2_has_midpoint(self):
        assert np.allclose(gauss_lobatto_points(3), [0.0, 0.5, 1.0])

    def test_interior_are_legendre_deriv_roots(self):
        pts = gauss_lobatto_points(6)
        interior = 2 * pts[1:-1] - 1
        assert np.allclose(legendre_deriv(5, interior), 0.0, atol=1e-12)

    def test_single_point(self):
        assert np.allclose(gauss_lobatto_points(1), [0.5])


class TestLagrangeBasis:
    def test_kronecker_at_nodes(self):
        b = LagrangeBasis1D.lobatto(4)
        vals = b.eval(b.nodes)
        assert np.allclose(vals, np.eye(5), atol=1e-13)

    def test_partition_of_unity(self):
        b = LagrangeBasis1D.lobatto(5)
        x = np.linspace(0, 1, 33)
        assert np.allclose(b.eval(x).sum(axis=1), 1.0, atol=1e-12)

    def test_derivatives_sum_to_zero(self):
        b = LagrangeBasis1D.lobatto(4)
        x = np.linspace(0, 1, 17)
        assert np.allclose(b.eval_deriv(x).sum(axis=1), 0.0, atol=1e-11)

    @given(deg=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_reproduces_polynomials(self, deg):
        """Order-k basis interpolates degree <= k polynomials exactly."""
        b = LagrangeBasis1D.lobatto(6)
        coeffs = np.arange(1.0, deg + 2)
        f = lambda x: sum(c * x**i for i, c in enumerate(coeffs))
        x = np.linspace(0, 1, 13)
        interp = b.interpolate(f(b.nodes), x)
        assert np.allclose(interp, f(x), atol=1e-11)

    def test_deriv_of_linear(self):
        b = LagrangeBasis1D.lobatto(3)
        x = np.linspace(0, 1, 9)
        nodal = 2.0 * b.nodes + 1.0
        deriv = b.eval_deriv(x) @ nodal
        assert np.allclose(deriv, 2.0, atol=1e-12)

    def test_diff_matrix_consistency(self):
        b = LagrangeBasis1D.lobatto(4)
        D = b.diff_matrix()
        vals = b.eval_deriv(b.nodes)
        assert np.allclose(D, vals, atol=1e-12)

    def test_q0_constant(self):
        b = LagrangeBasis1D.lobatto(0)
        x = np.linspace(0, 1, 5)
        assert np.allclose(b.eval(x), 1.0)
        assert np.allclose(b.eval_deriv(x), 0.0)

    def test_rejects_unsorted_nodes(self):
        with pytest.raises(ValueError):
            LagrangeBasis1D(np.array([0.5, 0.2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LagrangeBasis1D(np.array([]))

    def test_equispaced_points(self):
        assert np.allclose(equispaced_points(3), [0, 0.5, 1])
        assert np.allclose(equispaced_points(1), [0.5])
