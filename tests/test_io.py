"""Tests for VTK output and checkpoint/restart."""

import numpy as np
import pytest

from repro import LagrangianHydroSolver, SedovProblem, SolverOptions
from repro.io import load_checkpoint, restore_solver, save_checkpoint, write_vtk


@pytest.fixture
def solver():
    return LagrangianHydroSolver(SedovProblem(dim=2, order=2, zones_per_dim=3))


class TestVTK:
    def test_writes_valid_header_and_counts(self, solver, tmp_path):
        path = write_vtk(tmp_path / "snap", solver)
        text = path.read_text()
        assert text.startswith("# vtk DataFile Version 3.0")
        assert "DATASET UNSTRUCTURED_GRID" in text
        # High-order mode: every kinematic node is a point and every
        # zone contributes order^2 sub-quads.
        assert f"POINTS {solver.kinematic.ndof} double" in text
        ncells = solver.kinematic.mesh.nzones * solver.kinematic.order**2
        assert f"CELLS {ncells} " in text
        assert "SCALARS density double 1" in text
        assert "VECTORS velocity double" in text

    def test_vertex_shell_mode(self, solver, tmp_path):
        path = write_vtk(tmp_path / "shell.vtk", solver, high_order=False)
        text = path.read_text()
        assert f"CELLS {solver.kinematic.mesh.nzones} " in text

    def test_point_count_matches_body(self, solver, tmp_path):
        path = write_vtk(tmp_path / "snap", solver)
        lines = path.read_text().splitlines()
        i = next(k for k, l in enumerate(lines) if l.startswith("POINTS"))
        n = int(lines[i].split()[1])
        pts = [lines[i + 1 + j].split() for j in range(n)]
        assert all(len(p) == 3 for p in pts)

    def test_cell_indices_in_range(self, solver, tmp_path):
        path = write_vtk(tmp_path / "snap", solver)
        lines = path.read_text().splitlines()
        i = next(k for k, l in enumerate(lines) if l.startswith("POINTS"))
        npts = int(lines[i].split()[1])
        j = next(k for k, l in enumerate(lines) if l.startswith("CELLS"))
        ncells = int(lines[j].split()[1])
        for row in lines[j + 1 : j + 1 + ncells]:
            vals = list(map(int, row.split()))
            assert vals[0] == 4
            assert all(0 <= v < npts for v in vals[1:])

    def test_3d_hexes(self, tmp_path):
        s = LagrangianHydroSolver(SedovProblem(dim=3, order=1, zones_per_dim=2))
        path = write_vtk(tmp_path / "hex", s)
        text = path.read_text()
        assert "12\n" in text  # VTK_HEXAHEDRON

    def test_suffix_appended(self, solver, tmp_path):
        path = write_vtk(tmp_path / "noext", solver)
        assert path.suffix == ".vtk"


class TestCheckpoint:
    def test_roundtrip_fields(self, solver, tmp_path):
        solver.run(t_final=0.02)
        path = save_checkpoint(tmp_path / "chk", solver)
        data = load_checkpoint(path)
        assert np.array_equal(data["v"], solver.state.v)
        assert np.array_equal(data["e"], solver.state.e)
        assert data["t"] == solver.state.t
        assert data["problem"] == "sedov"

    def test_restore_continues_run(self, tmp_path):
        """Checkpoint mid-run, restore into a fresh solver, continue.

        The restored state is bit-identical; the continued run marches
        to the final time and still conserves total energy to roundoff
        (so the restart loses nothing physical). Step-sequence-identical
        trajectories are not expected — the dt controller restarts its
        ramp — which is exactly how production restarts behave.
        """
        p = lambda: SedovProblem(dim=2, order=2, zones_per_dim=3)
        first = LagrangianHydroSolver(p())
        first.run(t_final=0.01)
        e_mid = first.energies().total
        path = save_checkpoint(tmp_path / "mid", first)

        second = LagrangianHydroSolver(p())
        restore_solver(path, second)
        assert second.state.t == pytest.approx(0.01)
        assert np.array_equal(second.state.v, first.state.v)
        assert np.array_equal(second.state.e, first.state.e)
        assert second.energies().total == pytest.approx(e_mid, rel=1e-14)

        res = second.run(t_final=0.02)
        assert res.reached_t_final
        assert second.energies().total == pytest.approx(e_mid, rel=1e-12)

    def test_mismatch_rejected(self, solver, tmp_path):
        path = save_checkpoint(tmp_path / "chk", solver)
        other = LagrangianHydroSolver(SedovProblem(dim=2, order=3, zones_per_dim=3))
        with pytest.raises(ValueError):
            restore_solver(path, other)

    def test_version_check(self, solver, tmp_path):
        path = save_checkpoint(tmp_path / "chk", solver)
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_suffix_appended(self, solver, tmp_path):
        path = save_checkpoint(tmp_path / "plain", solver)
        assert path.suffix == ".npz"
