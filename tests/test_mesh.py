"""Tests for mesh generation and topology."""

import numpy as np
import pytest

from repro.fem.mesh import Mesh, cartesian_mesh_2d, cartesian_mesh_3d


class TestCartesian2D:
    def test_counts(self):
        m = cartesian_mesh_2d(3, 2)
        assert m.nzones == 6
        assert m.nverts == 12
        assert m.dim == 2

    def test_vertex_ordering_lexicographic(self):
        m = cartesian_mesh_2d(2, 2)
        # first row of vertices along x
        assert np.allclose(m.verts[0], [0, 0])
        assert np.allclose(m.verts[1], [0.5, 0])
        assert np.allclose(m.verts[3], [0, 0.5])

    def test_zone_connectivity(self):
        m = cartesian_mesh_2d(2, 1)
        # zone 0: vertices (0,0),(1,0),(0,1),(1,1) of the 3x2 vertex grid
        assert list(m.zones[0]) == [0, 1, 3, 4]
        assert list(m.zones[1]) == [1, 2, 4, 5]

    def test_extent(self):
        m = cartesian_mesh_2d(4, 2, extent=((0.0, 7.0), (0.0, 3.0)))
        assert m.verts[:, 0].max() == pytest.approx(7.0)
        assert m.verts[:, 1].max() == pytest.approx(3.0)

    def test_zone_vertex_coords_shape(self):
        m = cartesian_mesh_2d(3, 3)
        zc = m.zone_vertex_coords()
        assert zc.shape == (9, 4, 2)
        # Every zone is an axis-aligned square of side 1/3.
        assert np.allclose(zc[:, 1, 0] - zc[:, 0, 0], 1 / 3)

    def test_min_edge_length(self):
        m = cartesian_mesh_2d(4, 2)
        assert m.min_edge_length() == pytest.approx(0.25)

    def test_rejects_zero_zones(self):
        with pytest.raises(ValueError):
            cartesian_mesh_2d(0, 3)


class TestCartesian3D:
    def test_counts(self):
        m = cartesian_mesh_3d(2, 3, 4)
        assert m.nzones == 24
        assert m.nverts == 3 * 4 * 5

    def test_zone_volume_partition(self):
        m = cartesian_mesh_3d(2, 2, 2)
        zc = m.zone_vertex_coords()
        # hexes are cubes of side 0.5
        assert np.allclose(zc[:, 7] - zc[:, 0], 0.5)

    def test_connectivity_first_zone(self):
        m = cartesian_mesh_3d(1, 1, 1)
        assert list(m.zones[0]) == [0, 1, 2, 3, 4, 5, 6, 7]


class TestMeshValidation:
    def test_rejects_bad_zone_width(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((4, 2)), np.zeros((1, 8), dtype=int))

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((2, 2)), np.array([[0, 1, 2, 3]]))

    def test_zone_attributes_default(self):
        m = cartesian_mesh_2d(2, 2)
        assert np.array_equal(m.zone_attributes, np.zeros(4, dtype=int))

    def test_transform(self):
        m = cartesian_mesh_2d(2, 2)
        m2 = m.transform(lambda v: 2.0 * v)
        assert np.allclose(m2.verts, 2.0 * m.verts)
        assert m2 is not m

    def test_transform_shape_check(self):
        m = cartesian_mesh_2d(2, 2)
        with pytest.raises(ValueError):
            m.transform(lambda v: v[:1])

    def test_boundary_vertices(self):
        m = cartesian_mesh_2d(3, 3)
        b = m.boundary_vertices()
        assert b.size == 16 - 4  # 4x4 grid minus 4 interior... 12 boundary
        interior = np.setdiff1d(np.arange(m.nverts), b)
        assert interior.size == 4
