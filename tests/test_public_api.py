"""Public-API surface checks.

Production-quality gates: every name a package exports resolves, every
public item carries a docstring, and the documented entry points exist.
Cheap tests that catch the embarrassing breakages (renamed symbol still
in __all__, new public class with no docs) before users do.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.fem",
    "repro.linalg",
    "repro.hydro",
    "repro.problems",
    "repro.kernels",
    "repro.gpu",
    "repro.cpu",
    "repro.tuning",
    "repro.runtime",
    "repro.cluster",
    "repro.analysis",
    "repro.io",
    "repro.resilience",
    "repro.telemetry",
]

MODULES = [
    "repro.fem.polynomials", "repro.fem.quadrature", "repro.fem.reference_element",
    "repro.fem.mesh", "repro.fem.spaces", "repro.fem.geometry", "repro.fem.assembly",
    "repro.fem.partition", "repro.fem.refinement", "repro.fem.curvilinear",
    "repro.linalg.csr", "repro.linalg.pcg", "repro.linalg.batched",
    "repro.linalg.smallmat", "repro.linalg.eig", "repro.linalg.svd_small",
    "repro.linalg.blockdiag", "repro.linalg.cholesky",
    "repro.hydro.state", "repro.hydro.eos", "repro.hydro.viscosity",
    "repro.hydro.corner_force", "repro.hydro.boundary", "repro.hydro.momentum",
    "repro.hydro.timestep", "repro.hydro.integrator", "repro.hydro.solver",
    "repro.hydro.diagnostics",
    "repro.problems.sedov", "repro.problems.triple_point", "repro.problems.noh",
    "repro.problems.saltzman", "repro.problems.sod", "repro.problems.taylor_green",
    "repro.kernels.config", "repro.kernels.registry", "repro.kernels.cublas",
    "repro.gpu.specs", "repro.gpu.occupancy", "repro.gpu.execution",
    "repro.gpu.power", "repro.gpu.nvml", "repro.gpu.device", "repro.gpu.pcie",
    "repro.gpu.streams", "repro.gpu.multigpu",
    "repro.cpu.specs", "repro.cpu.core_model", "repro.cpu.rapl", "repro.cpu.openmp",
    "repro.tuning.parameters", "repro.tuning.autotuner", "repro.tuning.balance",
    "repro.tuning.cache",
    "repro.runtime.mpi_sim", "repro.runtime.groups", "repro.runtime.hybrid",
    "repro.runtime.energy", "repro.runtime.distributed",
    "repro.cluster.machines", "repro.cluster.scaling",
    "repro.analysis.profiles", "repro.analysis.report", "repro.analysis.convergence",
    "repro.analysis.roofline", "repro.analysis.exascale", "repro.analysis.riemann",
    "repro.io.vtk", "repro.io.checkpoint",
    "repro.resilience.faults", "repro.resilience.policy",
    "repro.resilience.watchdog", "repro.resilience.driver",
    "repro.telemetry.tracer", "repro.telemetry.sampler",
    "repro.telemetry.export", "repro.telemetry.manifest",
    "repro.config", "repro.api",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for symbol in exported:
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing '{symbol}'"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    """Every public class/function defined in the module has a docstring."""
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", None)
    if exported is None:
        return
    for symbol in exported:
        obj = getattr(mod, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) != name:
                continue  # re-export; documented at its source
            assert obj.__doc__ and obj.__doc__.strip(), f"{name}.{symbol} undocumented"


def test_top_level_quickstart_surface():
    """The README quickstart names must exist at the top level."""
    import repro

    for name in ("SedovProblem", "LagrangianHydroSolver", "SolverOptions",
                 "TriplePointProblem", "NohProblem", "SaltzmanProblem",
                 "SodProblem", "RunConfig", "__version__"):
        assert hasattr(repro, name)


def test_facade_surface():
    """The one-call facade exists with its documented signature."""
    from repro.api import RunConfig, RunReport, make_problem, run

    assert callable(run) and callable(make_problem)
    assert RunConfig is not None and RunReport is not None


def test_cli_entry_point_exists():
    from repro.cli import build_parser, main

    assert callable(main)
    assert build_parser().prog == "repro"

