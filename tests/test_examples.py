"""Smoke tests: every example script runs end-to-end.

Examples are part of the public deliverable; these tests execute them
as subprocesses (with reduced workloads where they accept flags) and
check for healthy output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "total-energy drift" in out
        assert "radial density profile" in out

    def test_sedov_blast(self):
        out = run_example("sedov_blast.py", "--zones", "2", "--t-final", "0.03",
                          "--checkpoints", "2")
        assert "R_shock" in out
        assert "|E - E0| / E0" in out

    def test_triple_point(self):
        out = run_example("triple_point.py", "--order", "2", "--nx", "7",
                          "--ny", "3", "--t-final", "0.1")
        assert "1.005" in out  # the paper's total energy
        assert "per-material state" in out

    def test_autotune_and_balance(self):
        out = run_example("autotune_and_balance.py")
        assert "best matrices_per_block = 32" in out
        assert "optimal GPU share" in out

    def test_greenup_report(self):
        out = run_example("greenup_report.py")
        assert "greenup" in out
        assert "Q4-Q3" in out

    def test_lagrangian_benchmarks(self, tmp_path):
        out = run_example("lagrangian_benchmarks.py", "--quick",
                          "--outdir", str(tmp_path))
        assert "Noh implosion" in out
        assert "Saltzman piston" in out
        assert (tmp_path / "noh_final.vtk").exists()
