"""Tests for the CSR sparse matrix."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.csr import CSRMatrix


def random_coo(rng, nrows, ncols, nnz):
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, ncols, nnz)
    vals = rng.standard_normal(nnz)
    return rows, cols, vals


class TestConstruction:
    def test_from_coo_sums_duplicates(self):
        m = CSRMatrix.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0], (2, 2))
        dense = m.to_dense()
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 4.0
        assert m.nnz == 2

    def test_from_dense_roundtrip(self, rng):
        d = rng.standard_normal((5, 7))
        d[np.abs(d) < 0.5] = 0.0
        m = CSRMatrix.from_dense(d)
        assert np.allclose(m.to_dense(), d)

    def test_prune_tol(self):
        m = CSRMatrix.from_coo([0, 1], [0, 1], [1e-15, 1.0], (2, 2), prune_tol=1e-12)
        assert m.nnz == 1

    def test_empty_matrix(self):
        m = CSRMatrix.from_coo([], [], [], (3, 3))
        assert m.nnz == 0
        assert np.allclose(m.matvec(np.ones(3)), 0.0)

    def test_identity(self):
        m = CSRMatrix.identity(4)
        x = np.arange(4.0)
        assert np.allclose(m.matvec(x), x)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0], [5], [1.0], (2, 2))
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([3], [0], [1.0], (2, 2))
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(1), np.zeros(1, dtype=int), np.array([0, 1]), (2, 2))


class TestOps:
    def test_matvec_vs_scipy(self, rng):
        rows, cols, vals = random_coo(rng, 20, 15, 80)
        ours = CSRMatrix.from_coo(rows, cols, vals, (20, 15))
        theirs = sp.coo_matrix((vals, (rows, cols)), shape=(20, 15)).tocsr()
        x = rng.standard_normal(15)
        assert np.allclose(ours.matvec(x), theirs @ x)

    def test_matvec_with_empty_rows(self):
        m = CSRMatrix.from_coo([0, 3], [1, 2], [2.0, 5.0], (5, 4))
        y = m.matvec(np.array([1.0, 1.0, 1.0, 1.0]))
        assert np.allclose(y, [2.0, 0, 0, 5.0, 0])

    def test_rmatvec(self, rng):
        rows, cols, vals = random_coo(rng, 12, 9, 40)
        m = CSRMatrix.from_coo(rows, cols, vals, (12, 9))
        y = rng.standard_normal(12)
        assert np.allclose(m.rmatvec(y), m.to_dense().T @ y)

    def test_matmul_operator(self, rng):
        m = CSRMatrix.from_dense(rng.standard_normal((4, 4)))
        x = rng.standard_normal(4)
        assert np.allclose(m @ x, m.matvec(x))

    def test_diagonal(self, rng):
        d = rng.standard_normal((6, 6))
        m = CSRMatrix.from_dense(d)
        assert np.allclose(m.diagonal(), np.diag(d))

    def test_diagonal_with_structural_zero(self):
        m = CSRMatrix.from_coo([0], [1], [1.0], (2, 2))
        assert np.allclose(m.diagonal(), [0.0, 0.0])

    def test_transpose(self, rng):
        rows, cols, vals = random_coo(rng, 8, 11, 30)
        m = CSRMatrix.from_coo(rows, cols, vals, (8, 11))
        assert np.allclose(m.transpose().to_dense(), m.to_dense().T)

    def test_is_symmetric(self, rng):
        a = rng.standard_normal((5, 5))
        sym = CSRMatrix.from_dense(a + a.T)
        assert sym.is_symmetric()
        nonsym = CSRMatrix.from_coo([0], [1], [1.0], (2, 2))
        assert not nonsym.is_symmetric()
        rect = CSRMatrix.from_coo([0], [0], [1.0], (2, 3))
        assert not rect.is_symmetric()

    def test_scale_rows(self, rng):
        d = rng.standard_normal((4, 4))
        m = CSRMatrix.from_dense(d)
        s = rng.standard_normal(4)
        assert np.allclose(m.scale_rows(s).to_dense(), s[:, None] * d)

    def test_matvec_shape_check(self):
        m = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            m.matvec(np.ones(4))


class TestPropertyBased:
    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_matvec_matches_dense(self, n, seed):
        rng = np.random.default_rng(seed)
        nnz = rng.integers(0, n * n + 1)
        rows = rng.integers(0, n, nnz)
        cols = rng.integers(0, n, nnz)
        vals = rng.standard_normal(nnz)
        m = CSRMatrix.from_coo(rows, cols, vals, (n, n))
        dense = np.zeros((n, n))
        np.add.at(dense, (rows, cols), vals)
        x = rng.standard_normal(n)
        assert np.allclose(m.matvec(x), dense @ x, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_transpose_involution(self, seed):
        rng = np.random.default_rng(seed)
        rows, cols, vals = random_coo(rng, 6, 9, 20)
        m = CSRMatrix.from_coo(rows, cols, vals, (6, 9))
        tt = m.transpose().transpose()
        assert np.allclose(tt.to_dense(), m.to_dense())
