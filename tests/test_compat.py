"""The consolidated deprecation layer (`repro._compat`).

PR 3/4/5 each left a transitional shim behind (SolverOptions, direct
ResilientDriver construction, the CLI --engine flags,
DistributedLagrangianSolver). They now live behind one registry: each
warns exactly once per use with a message naming its replacement, and
each still produces bit-identical physics to the `repro.api.run` path
it points at.
"""

import warnings

import numpy as np
import pytest

from repro._compat import (
    DEPRECATIONS,
    deprecations_suppressed,
    internal_construction,
    warn_deprecated,
)
from repro.api import RunConfig, run
from repro.problems import SedovProblem


def sedov(zones=3):
    return SedovProblem(dim=2, order=2, zones_per_dim=zones)


class TestRegistry:
    def test_every_shim_is_registered(self):
        assert set(DEPRECATIONS) == {
            "SolverOptions",
            "ResilientDriver",
            "DistributedLagrangianSolver",
            "--engine/--legacy-engine",
        }

    def test_every_message_names_the_replacement(self):
        for name, replacement in DEPRECATIONS.items():
            assert "repro.api" in replacement or "--backend" in replacement, name

    def test_warn_deprecated_emits_canonical_text(self):
        with pytest.warns(DeprecationWarning,
                          match="SolverOptions is deprecated; use "):
            warn_deprecated("SolverOptions", stacklevel=1)

    def test_unknown_name_is_a_hard_error(self):
        with pytest.raises(KeyError):
            warn_deprecated("NotAShim", stacklevel=1)

    def test_suppression_context(self):
        assert not deprecations_suppressed()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with internal_construction():
                assert deprecations_suppressed()
                warn_deprecated("SolverOptions", stacklevel=1)
                warn_deprecated("ResilientDriver", stacklevel=1)
        assert not deprecations_suppressed()


class TestShimWarnings:
    def test_solver_options_warns(self):
        from repro.hydro.solver import SolverOptions

        with pytest.warns(DeprecationWarning,
                          match=r"SolverOptions is deprecated; use "
                                r"repro\.api\.RunConfig"):
            SolverOptions()

    def test_resilient_driver_warns(self):
        from repro.hydro.solver import LagrangianHydroSolver
        from repro.resilience import ResilientDriver

        solver = LagrangianHydroSolver(sedov(), RunConfig())
        with pytest.warns(DeprecationWarning,
                          match=r"ResilientDriver is deprecated; use "
                                r"repro\.api\.run"):
            ResilientDriver(solver)

    def test_distributed_solver_warns(self):
        from repro.runtime.distributed import DistributedLagrangianSolver

        with pytest.warns(DeprecationWarning,
                          match=r"DistributedLagrangianSolver is deprecated; "
                                r"use repro\.api\.run"):
            DistributedLagrangianSolver(sedov(), nranks=2)

    def test_cli_engine_flag_warns(self, tmp_path):
        from repro.cli import main

        with pytest.warns(DeprecationWarning,
                          match=r"--engine/--legacy-engine is deprecated; "
                                r"use --backend"):
            main(["run", "sedov", "--zones", "3",
                  "--t-final", "0.005", "--engine", "fused"])


class TestShimParity:
    """Each shim path still produces the same bits as repro.api.run."""

    def _assert_same_state(self, a, b):
        assert np.array_equal(a.v, b.v)
        assert np.array_equal(a.e, b.e)
        assert np.array_equal(a.x, b.x)

    def test_solver_options_path(self):
        from repro.hydro.solver import LagrangianHydroSolver, SolverOptions

        with pytest.warns(DeprecationWarning, match="SolverOptions"):
            opts = SolverOptions()
        shim = LagrangianHydroSolver(sedov(), opts).run(t_final=0.02)
        facade = run("sedov", RunConfig(zones=3, t_final=0.02))
        assert shim.steps == facade.steps
        self._assert_same_state(shim.state, facade.state)

    def test_resilient_driver_path(self, tmp_path):
        from repro.hydro.solver import LagrangianHydroSolver
        from repro.resilience import ResilientDriver

        solver = LagrangianHydroSolver(sedov(), RunConfig())
        with pytest.warns(DeprecationWarning, match="ResilientDriver"):
            driver = ResilientDriver(solver, checkpoint_every=5)
        shim = driver.run(t_final=0.02)
        facade = run("sedov", RunConfig(zones=3, t_final=0.02,
                                        checkpoint_every=5))
        assert shim.result.steps == facade.steps
        self._assert_same_state(shim.result.state, facade.state)

    def test_distributed_solver_path(self):
        from repro.runtime.distributed import DistributedLagrangianSolver

        with pytest.warns(DeprecationWarning,
                          match="DistributedLagrangianSolver"):
            shim_solver = DistributedLagrangianSolver(sedov(), nranks=2)
        shim = shim_solver.run(t_final=0.02)
        facade = run("sedov", RunConfig(zones=3, t_final=0.02, ranks=2))
        assert shim.steps == facade.steps
        self._assert_same_state(shim.state, facade.state)

    def test_facade_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run("sedov", RunConfig(zones=3, t_final=0.01, ranks=2))
