"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it builds
the workload (running the real solver where the experiment calls for
it), evaluates the simulated hardware, prints a paper-vs-measured
comparison, and returns the data so the pytest-benchmark wrapper can
assert the reproduced *shape*.

Run any bench directly (`python benchmarks/bench_table7_greenup.py`) to
see its tables, or through pytest-benchmark
(`pytest benchmarks/ --benchmark-only`).
"""

from __future__ import annotations

from functools import lru_cache

from repro import LagrangianHydroSolver, SedovProblem, SolverOptions
from repro.analysis.record import append_bench_record
from repro.kernels import FEConfig

__all__ = [
    "measured_pcg_iterations",
    "reference_workload",
    "append_bench_record",
    "PAPER",
]

# The paper's reported numbers, collected in one place.
PAPER = {
    "fig11_speedup_q2": 1.9,
    "fig11_speedup_q4": 2.5,
    "table7_powerup_q2": 0.67,
    "table7_powerup_q4": 0.57,
    "table7_greenup_q2": 1.27,
    "table7_greenup_q4": 1.42,
    "table1": {  # method -> (corner force s, CG s, total s)
        "2D: Q4-Q3": (198.6, 53.6, 262.7),
        "2D: Q3-Q2": (72.6, 26.2, 103.7),
        "3D: Q2-Q1": (90.0, 56.7, 164.0),
    },
    "table4": {"streamed_cublas": 0.2, "kernel8": 18.0, "theoretical": 35.5},
    "table5": {"sedov": (0.75, 14), "triple-pt": (0.77, 12)},
    "table6_energy_change": (-9.2192919964873e-13, -4.9382720135327e-13),
    "fig12_endpoints": {8: 0.85, 4096: 1.83},
    "fig15_idle_w": 20.0,
    "fig15_startup_w": 50.0,
    "fig14_pkg_full_w": 95.0,
    "fig14_dram_w": 15.0,
    "fig16_pkg_w": 75.0,
    "fig16_pp0_w": 60.0,
    "opt_time_reduction": 0.60,
    "opt_power_reduction": 0.10,
}


@lru_cache(maxsize=None)
def measured_pcg_iterations(dim: int = 3, order: int = 2, zones_per_dim: int = 3) -> float:
    """Average momentum-PCG iterations per solve, measured on a real run.

    PCG on the (well-conditioned, Jacobi-preconditioned) mass matrix
    converges in a mesh-size-independent iteration count, so a small
    run calibrates the big configurations.
    """
    problem = SedovProblem(dim=dim, order=order, zones_per_dim=zones_per_dim)
    solver = LagrangianHydroSolver(problem, SolverOptions(max_steps=6))
    solver.run(t_final=1.0, max_steps=6)
    return solver.workload.pcg_iters_per_solve


@lru_cache(maxsize=None)
def reference_workload(dim: int = 3, order: int = 2, zones_per_dim: int = 16) -> FEConfig:
    """The paper's single-node 3D Sedov configuration (16^3 zones)."""
    return FEConfig(dim=dim, order=order, nzones=zones_per_dim**dim)
