"""Figure 3: Q1-Q0 / Q2-Q1 / Q3-Q2 zone layouts.

The schematic figure depicts where the kinematic (continuous) and
thermodynamic (discontinuous) dofs sit in a zone. We regenerate the
counts and layouts from the reference elements.
"""

from repro.analysis.report import Table
from repro.fem.reference_element import ReferenceElement


def compute():
    rows = []
    for k in (1, 2, 3):
        kin = ReferenceElement(2, k)
        thermo = ReferenceElement(2, k - 1)
        rows.append(
            {
                "method": f"Q{k}-Q{k - 1}",
                "kinematic_dofs": kin.ndof,
                "thermo_dofs": thermo.ndof,
                "kin_on_boundary": int(
                    sum(
                        1
                        for p in kin.dof_coords
                        if min(p.min(), 1 - p.max()) < 1e-12
                    )
                ),
            }
        )
    return rows


def run():
    rows = compute()
    t = Table(
        "Figure 3: dofs per 2D zone (kinematic continuous / thermo discontinuous)",
        ["method", "kinematic", "thermo", "kinematic on zone boundary"],
    )
    for r in rows:
        t.add(r["method"], r["kinematic_dofs"], r["thermo_dofs"], r["kin_on_boundary"])
    t.print()
    return rows


def test_fig03_zone_dofs(benchmark):
    rows = benchmark(compute)
    assert [r["kinematic_dofs"] for r in rows] == [4, 9, 16]
    assert [r["thermo_dofs"] for r in rows] == [1, 4, 9]
    # The bilinear zone has every kinematic dof on the boundary; higher
    # orders add interior nodes.
    assert rows[0]["kin_on_boundary"] == 4
    assert rows[1]["kin_on_boundary"] == 8
    assert rows[2]["kin_on_boundary"] == 12


if __name__ == "__main__":
    run()
