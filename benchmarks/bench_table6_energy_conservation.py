"""Table 6: CPU and GPU paths conserve total energy to machine precision.

The paper validates its CUDA port by running the 2D triple-point with a
Q3-Q2 method on both platforms: both preserve KE + IE to ~1e-13 of the
10.05 total. Our two paths are the loop-based ("CPU") and batched
("GPU" redesign) corner-force formulations driving the same solver; we
verify (a) each conserves to roundoff over a real run and (b) the two
formulations agree to roundoff pointwise.
"""

import numpy as np

from _common import PAPER

from repro.analysis.report import Table
from repro import LagrangianHydroSolver, TriplePointProblem
from repro.hydro.corner_force import corner_force_loops


def compute(t_final: float = 0.25):
    problem = TriplePointProblem(order=3, nx=14, ny=6)
    solver = LagrangianHydroSolver(problem)
    initial = solver.energies()
    result = solver.run(t_final=t_final)
    final = result.energy_history[-1]
    # Cross-validate the two formulations at the evolved state.
    batched = solver.engine.compute(solver.state).Fz
    loops = corner_force_loops(solver.engine, solver.state)
    max_rel = float(
        np.max(np.abs(batched - loops)) / max(np.max(np.abs(loops)), 1e-300)
    )
    return {
        "initial": initial,
        "final": final,
        "energy_change": result.energy_change,
        "relative_change": result.energy_change / initial.total,
        "formulation_mismatch": max_rel,
        "steps": result.steps,
    }


def run():
    d = compute()
    t = Table(
        "Table 6: 2D triple point, Q3-Q2 — energy conservation",
        ["platform", "final time", "kinetic", "internal", "total", "total change"],
    )
    cpu_change, gpu_change = PAPER["table6_energy_change"]
    t.add("paper CPU", 0.6, "5.0424e-01", "9.5458e+00", "1.0050e+01", f"{cpu_change:.3e}")
    t.add("paper GPU", 0.6, "5.0419e-01", "9.5458e+00", "1.0050e+01", f"{gpu_change:.3e}")
    f = d["final"]
    t.add(
        "this repo", round(f.t, 4), f"{f.kinetic:.4e}", f"{f.internal:.4e}",
        f"{f.total:.4e}", f"{d['energy_change']:.3e}",
    )
    t.print()
    print(f"batched-vs-loops corner force max relative mismatch: {d['formulation_mismatch']:.2e}")
    print()
    return d


def test_table6_energy_conservation(benchmark):
    import pytest

    d = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Machine-precision conservation, like both of the paper's rows.
    assert abs(d["relative_change"]) < 1e-11
    # The initial total energy matches the paper's 1.005e+01 exactly
    # (same initial data).
    assert d["initial"].total == pytest.approx(10.05, rel=1e-9)
    # The two formulations agree to roundoff (the paper's CPU-vs-GPU
    # consistency check).
    assert d["formulation_mismatch"] < 1e-11


if __name__ == "__main__":
    run()
