"""Ablation: quadrature points per dimension vs cost and robustness.

The paper fixes 2k points per dimension (giving its 81x64 / 375x512
operator shapes). This ablation varies the rule on a real Sedov run:
the minimal k-point rule under-integrates the curved, moving geometry
badly enough to tangle the blast (a real failure, reported as such),
the 2k rule is robust, and richer rules only add cost. Energy
conservation holds for any rule that completes — it is a structural
property of the RK2Avg pairing, not of quadrature accuracy.
"""

from _common import measured_pcg_iterations

from repro.analysis.report import Table
from repro import LagrangianHydroSolver, SedovProblem, SolverOptions
from repro.gpu import execute_kernel, get_gpu
from repro.kernels import FEConfig
from repro.kernels.registry import corner_force_costs

ORDER = 2
POINTS = [2, 3, 4, 6]  # 2k = 4 is the paper default for Q2


def one(npts: int, t_final: float = 0.05):
    problem = SedovProblem(dim=2, order=ORDER, zones_per_dim=4)
    solver = LagrangianHydroSolver(problem, SolverOptions(quad_points_1d=npts))
    try:
        result = solver.run(t_final=t_final, max_steps=1500)
        return {
            "completed": result.reached_t_final,
            "steps": result.steps,
            "drift": abs(result.energy_change) / result.energy_history[0].total,
            "final_ke": result.energy_history[-1].kinetic,
        }
    except RuntimeError:
        return {"completed": False, "steps": -1, "drift": float("nan"),
                "final_ke": float("nan")}


def compute():
    k20 = get_gpu("K20")
    rows = []
    for npts in POINTS:
        r = one(npts)
        cfg = FEConfig(2, ORDER, 16, quad_points_1d=npts)
        r.update(
            points=npts,
            nqp=npts**2,
            gpu_corner_time=sum(
                execute_kernel(k20, c).time_s for c in corner_force_costs(cfg)
            ),
        )
        rows.append(r)
    return rows


def run():
    rows = compute()
    t = Table(
        "Ablation: quadrature points per dim (2D Q2-Q1 Sedov to t=0.05)",
        ["pts/dim", "nqp/zone", "completed", "steps", "energy drift",
         "final KE", "GPU corner time"],
    )
    for r in rows:
        ok = r["completed"]
        t.add(
            r["points"], r["nqp"], str(ok), r["steps"],
            f"{r['drift']:.2e}" if ok else "-",
            f"{r['final_ke']:.6f}" if ok else "-",
            f"{r['gpu_corner_time'] * 1e6:8.1f} us",
        )
    t.print()
    return rows


def test_ablation_quadrature(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    by_pts = {r["points"]: r for r in rows}
    # The paper's 2k rule (and anything richer) completes and conserves.
    for npts in (4, 6):
        assert by_pts[npts]["completed"]
        assert by_pts[npts]["drift"] < 1e-10
    # Cost grows monotonically with the rule.
    times = [r["gpu_corner_time"] for r in rows]
    assert all(b > a for a, b in zip(times, times[1:]))
    # The richer rules agree with each other far better than the
    # marginal 3-point rule does (if the minimal rule even completes).
    ke4, ke6 = by_pts[4]["final_ke"], by_pts[6]["final_ke"]
    assert abs(ke4 - ke6) / ke6 < 0.05
    if by_pts[3]["completed"]:
        assert abs(ke4 - ke6) <= abs(by_pts[3]["final_ke"] - ke6) + 1e-12


if __name__ == "__main__":
    run()
