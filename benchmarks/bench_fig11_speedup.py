"""Figure 11: single-node speedup of CPU-GPU over CPU-only.

"A 1.9x overall speedup is obtained using Q2-Q1 elements; 2.5x using
Q4-Q3 elements" — 8 MPI tasks sharing one K20 via Hyper-Q against the
Sandy Bridge node, 3D Sedov, with only the corner force accelerated.
Also checks the companion claim that the Q4/Q2 cost ratio shrinks from
CPU to hybrid ("3.2x on the CPU, but only 2x on CPU-GPU" — the GPU
absorbs the high-order extra work).
"""

from _common import PAPER, measured_pcg_iterations

from repro.analysis.report import paper_vs_measured
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.kernels import FEConfig
from repro.runtime.hybrid import HybridExecutor

# Fixed-dof comparison: Q4 on 8^3 zones has the same kinematic dofs as
# Q2 on 16^3 (33^3 nodes).
CONFIGS = {"Q2-Q1": FEConfig(3, 2, 16**3), "Q4-Q3": FEConfig(3, 4, 8**3)}


def compute():
    iters = measured_pcg_iterations()
    out = {}
    for label, cfg in CONFIGS.items():
        ex = HybridExecutor(
            cfg, get_cpu("E5-2670"), get_gpu("K20"), nmpi=8, pcg_iterations=iters
        )
        out[label] = {
            "cpu": ex.cpu_only(),
            "hybrid": ex.hybrid(),
            "speedup": ex.speedup(),
        }
    out["q4_q2_cpu_ratio"] = (
        out["Q4-Q3"]["cpu"].step.total_s / out["Q2-Q1"]["cpu"].step.total_s
    )
    out["q4_q2_hybrid_ratio"] = (
        out["Q4-Q3"]["hybrid"].step.total_s / out["Q2-Q1"]["hybrid"].step.total_s
    )
    return out


def run():
    d = compute()
    paper_vs_measured(
        "Figure 11: CPU-GPU speedup over CPU (3D Sedov, 8 MPI + K20)",
        [
            ("Q2-Q1 speedup", PAPER["fig11_speedup_q2"], round(d["Q2-Q1"]["speedup"], 2)),
            ("Q4-Q3 speedup", PAPER["fig11_speedup_q4"], round(d["Q4-Q3"]["speedup"], 2)),
            ("Q4/Q2 step-cost ratio, CPU", 3.2, round(d["q4_q2_cpu_ratio"], 2)),
            ("Q4/Q2 step-cost ratio, hybrid", 2.0, round(d["q4_q2_hybrid_ratio"], 2)),
        ],
    ).print()
    for label in CONFIGS:
        f = d[label]["cpu"].step.fractions()
        print(
            f"{label}: CPU step {d[label]['cpu'].step.total_s * 1e3:8.1f} ms "
            f"(corner force {f['corner_force']:.0%}), "
            f"hybrid {d[label]['hybrid'].step.total_s * 1e3:8.1f} ms"
        )
    print()
    return d


def test_fig11_speedup(benchmark):
    d = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Who wins and by roughly what factor.
    assert 1.5 <= d["Q2-Q1"]["speedup"] <= 2.9
    assert 2.0 <= d["Q4-Q3"]["speedup"] <= 3.6
    # Higher order gains more (the paper's headline).
    assert d["Q4-Q3"]["speedup"] > d["Q2-Q1"]["speedup"]
    # The hybrid compresses the cost of going high-order.
    assert d["q4_q2_hybrid_ratio"] < d["q4_q2_cpu_ratio"]


if __name__ == "__main__":
    run()
