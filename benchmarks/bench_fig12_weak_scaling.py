"""Figure 12: weak scaling on ORNL Titan to 4096 nodes.

512 zones per node, 8x more nodes per refinement level, time for 5
cycles: 0.85 s at 8 nodes rising to 1.83 s at 4096, limited by the
global min-dt reduction and MFEM's group communication. The fitted
log-shaped model reproduces the endpoints and predicts the interior.
"""

from _common import PAPER

from repro.analysis.report import Series, Table
from repro.cluster import TITAN, weak_scaling
from repro.cluster.scaling import TITAN_NODE_CYCLE_S, TITAN_SYNC_AMPLIFICATION_S

NODES = [8, 64, 512, 4096]


def compute():
    fitted = weak_scaling(
        TITAN, NODES, node_cycle_s=TITAN_NODE_CYCLE_S,
        sync_amplification_s=TITAN_SYNC_AMPLIFICATION_S,
    )
    modelled = weak_scaling(TITAN, NODES)  # per-node time from the substrate
    return {"fitted": fitted, "modelled": modelled}


def run():
    d = compute()
    t = Table(
        "Figure 12: Titan weak scaling, 5 cycles, 512 zones/node",
        ["nodes", "paper", "fitted model", "substrate model", "efficiency"],
    )
    paper_pts = PAPER["fig12_endpoints"]
    for fit, mod in zip(d["fitted"], d["modelled"]):
        t.add(
            fit.nodes,
            paper_pts.get(fit.nodes, "-"),
            f"{fit.time_s:.3f} s",
            f"{mod.time_s:.3f} s",
            f"{fit.efficiency:.0%}",
        )
    t.print()
    s = Series("fitted time vs nodes")
    for p in d["fitted"]:
        s.add(p.nodes, p.time_s)
    print(s.render())
    print()
    return d


def test_fig12_weak_scaling(benchmark):
    import pytest

    d = benchmark(compute)
    fitted = {p.nodes: p.time_s for p in d["fitted"]}
    assert fitted[8] == pytest.approx(0.85, rel=0.03)
    assert fitted[4096] == pytest.approx(1.83, rel=0.03)
    # Interior follows the log curve: equal increments per 8x nodes.
    inc1 = fitted[64] - fitted[8]
    inc2 = fitted[512] - fitted[64]
    inc3 = fitted[4096] - fitted[512]
    assert inc2 == pytest.approx(inc1, rel=0.15)
    assert inc3 == pytest.approx(inc2, rel=0.15)
    # The substrate-derived curve has the same monotone log shape.
    times = [p.time_s for p in d["modelled"]]
    assert all(b > a for a, b in zip(times, times[1:]))


if __name__ == "__main__":
    run()
