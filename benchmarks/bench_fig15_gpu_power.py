"""Figure 15: NVML board power of one K20 across six scenarios.

1,2) base vs optimized implementation, overall (corner force + CUDA-PCG,
     1 MPI task) — the optimized code draws ~10% less power;
3)   optimized corner force, Q2-Q1, 1 MPI (GPU not saturated: low);
4,5) optimized corner force with 8 MPI sharing the GPU, Q2-Q1 and Q4-Q3
     (Hyper-Q overhead + higher utilization: higher, Q4 highest);
6)   CUDA-PCG only, 1 MPI (memory bound: higher than corner 1 MPI).

Plus the floor levels: ~20 W idle, ~50 W as soon as any kernel runs.
"""

from _common import PAPER, measured_pcg_iterations, reference_workload

from repro.analysis.report import Table, paper_vs_measured
from repro.gpu import SimulatedGPU, get_gpu
from repro.kernels import FEConfig
from repro.kernels.k9_pcg import pcg_step_costs
from repro.kernels.k11_spmv import kernel11_cost
from repro.kernels.registry import corner_force_costs


def compute():
    k20 = get_gpu("K20")
    cfg = reference_workload()  # 16^3, the paper's K20 memory limit
    cfg_q4 = FEConfig(3, 4, 8**3)
    iters = measured_pcg_iterations()
    pcg = pcg_step_costs(cfg, iters, solves=3) + [kernel11_cost(cfg)]

    def phase(costs, clients=1):
        return SimulatedGPU(k20).run_phase(costs, concurrent_clients=clients)

    scenarios = {
        "overall base (1 MPI)": phase(corner_force_costs(cfg, "base") + pcg),
        "overall optimized (1 MPI)": phase(corner_force_costs(cfg, "optimized") + pcg),
        "corner force Q2-Q1 (1 MPI)": phase(corner_force_costs(cfg, "optimized")),
        "corner force Q2-Q1 (8 MPI)": phase(corner_force_costs(cfg, "optimized"), 8),
        "corner force Q4-Q3 (8 MPI)": phase(corner_force_costs(cfg_q4, "optimized"), 8),
        "CUDA-PCG only (1 MPI)": phase(pcg),
    }
    return {
        "scenarios": scenarios,
        "idle_w": k20.idle_w,
        "startup_w": k20.active_base_w,
        "tdp_w": k20.tdp_w,
        "power_reduction": 1.0
        - scenarios["overall optimized (1 MPI)"].power_w
        / scenarios["overall base (1 MPI)"].power_w,
        "time_reduction": 1.0
        - scenarios["overall optimized (1 MPI)"].time_s
        / scenarios["overall base (1 MPI)"].time_s,
    }


def run():
    d = compute()
    t = Table(
        "Figure 15: K20 board power by scenario (3D Sedov)",
        ["scenario", "stable power", "phase time"],
    )
    for name, rep in d["scenarios"].items():
        t.add(name, f"{rep.power_w:6.1f} W", f"{rep.time_s * 1e3:8.2f} ms")
    t.add("idle", f"{d['idle_w']:6.1f} W", "-")
    t.add("kernel-launch floor", f"{d['startup_w']:6.1f} W", "-")
    t.print()
    paper_vs_measured(
        "Paper vs measured",
        [
            ("idle power", PAPER["fig15_idle_w"], d["idle_w"]),
            ("startup power", PAPER["fig15_startup_w"], d["startup_w"]),
            ("optimized: time reduction", "60%", f"{d['time_reduction']:.0%}"),
            ("optimized: power reduction", "10%", f"{d['power_reduction']:.1%}"),
        ],
    ).print()
    return d


def test_fig15_gpu_power(benchmark):
    d = benchmark.pedantic(compute, rounds=1, iterations=1)
    s = d["scenarios"]
    # Orderings the paper reports:
    assert (
        s["overall optimized (1 MPI)"].power_w < s["overall base (1 MPI)"].power_w
    )
    assert (
        s["corner force Q2-Q1 (8 MPI)"].power_w
        > s["corner force Q2-Q1 (1 MPI)"].power_w
    )
    assert (
        s["corner force Q4-Q3 (8 MPI)"].power_w
        > s["corner force Q2-Q1 (8 MPI)"].power_w
    )
    assert s["CUDA-PCG only (1 MPI)"].power_w > s["corner force Q2-Q1 (1 MPI)"].power_w
    # Magnitudes: 60% less time, ~10% less power (we accept 4-15%).
    assert 0.45 <= d["time_reduction"] <= 0.8
    assert 0.03 <= d["power_reduction"] <= 0.2
    # Everything between the launch floor and TDP.
    for rep in s.values():
        assert d["startup_w"] <= rep.power_w <= d["tdp_w"]


if __name__ == "__main__":
    run()
