"""Table 5: CUDA + OpenMP auto-balance convergence.

"Zones are allocated on a six core X5560 CPU and a C2050 GPU":

    2D Sedov      -> optimal ratio 75%, converged in 14 periods
    2D Triple-pt  -> optimal ratio 77%, converged in 12 periods

The GPU side runs the *base* (Fermi-era) implementation — the
CUDA+OpenMP balancing of Section 3.3 targets "Kepler K10 and Fermi
clusters", predating the register-optimized kernels whose Fermi register
file is too small anyway. With that implementation the substrate's
throughput ratio lands at the paper's ~3:1 split with no per-experiment
tuning; the balancer itself is the real sampling-period scheduler run
with measurement noise.
"""

from _common import PAPER

from repro.analysis.report import paper_vs_measured
from repro.cpu import CPUExecutionModel, OpenMPModel, get_cpu
from repro.gpu import execute_kernel, get_gpu
from repro.kernels import FEConfig
from repro.kernels.registry import corner_force_costs

from repro.tuning import AutoBalancer

PROBLEMS = {
    "sedov": {"cfg": FEConfig(2, 2, 64**2), "seed": 2},
    "triple-pt": {"cfg": FEConfig(2, 3, 28 * 12), "seed": 5},
}


def make_times(cfg: FEConfig):
    c2050 = get_gpu("C2050")
    x5560 = get_cpu("X5560")
    costs = corner_force_costs(cfg, "base")
    t_gpu_full = sum(execute_kernel(c2050, c).time_s for c in costs)
    flops = sum(c.flops for c in costs)
    omp = OpenMPModel(nthreads=6)
    t_cpu_serial = CPUExecutionModel(x5560).corner_force_time(flops).seconds * x5560.cores

    def gpu_time(share: float) -> float:
        return share * t_gpu_full + 2e-4  # launch/transfer overhead

    def cpu_time(share: float) -> float:
        return omp.parallel_time(t_cpu_serial * share)

    return gpu_time, cpu_time


def compute():
    out = {}
    for name, spec in PROBLEMS.items():
        gpu_time, cpu_time = make_times(spec["cfg"])
        balancer = AutoBalancer(gpu_time, cpu_time, noise_rel=0.02, seed=spec["seed"])
        out[name] = balancer.balance(initial_ratio=0.5)
    return out


def run():
    results = compute()
    rows = []
    for name, res in results.items():
        p_ratio, p_periods = PAPER["table5"][name]
        rows.append((f"{name}: optimal GPU ratio", f"{p_ratio:.0%}", f"{res.ratio:.0%}"))
        rows.append((f"{name}: convergence periods", p_periods, res.periods))
    paper_vs_measured("Table 5: auto-balance (X5560 + C2050)", rows).print()
    return results


def test_table5_autobalance(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    for name, res in results.items():
        assert res.converged, name
        p_ratio, _ = PAPER["table5"][name]
        assert abs(res.ratio - p_ratio) < 0.10, name
        assert res.periods <= 30
    # The triple point puts slightly more work on the GPU.
    assert results["triple-pt"].ratio > results["sedov"].ratio - 0.02


if __name__ == "__main__":
    run()
