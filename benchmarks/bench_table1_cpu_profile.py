"""Table 1: CPU profile of BLAST (corner force vs CG solver).

"The corner force kernel consumes 55-75% of total time. The CG solver
takes 20-34%." We model the same three configurations on the Westmere
part and compare the *fractions* (the paper's absolute seconds depend
on its unpublished mesh sizes and step counts; we pick step counts that
land the totals at the same scale).
"""

from _common import PAPER, measured_pcg_iterations

from repro.analysis.profiles import cpu_profile
from repro.analysis.report import Table
from repro.cpu import get_cpu
from repro.kernels import FEConfig

# The two 2D rows share one mesh (order refinement at fixed zones, the
# comparison under which the corner-force share grows with order); step
# counts put each total at the paper's reported scale.
CONFIGS = {
    "2D: Q4-Q3": (FEConfig(2, 4, 48**2), 810),
    "2D: Q3-Q2": (FEConfig(2, 3, 48**2), 490),
    "3D: Q2-Q1": (FEConfig(3, 2, 16**3), 65),
}


def compute():
    iters = measured_pcg_iterations(dim=2)
    cpu = get_cpu("X5660")
    out = {}
    for label, (cfg, steps) in CONFIGS.items():
        out[label] = cpu_profile(
            cfg, cpu, steps=steps, nmpi=6, packages=1,
            pcg_iterations=iters, method=label,
        )
    return out


def run():
    profiles = compute()
    t = Table(
        "Table 1: CPU profile (seconds; fractions in parentheses)",
        ["method", "corner force", "CG solver", "total",
         "paper CF", "paper CG", "paper total"],
    )
    for label, prof in profiles.items():
        p_cf, p_cg, p_tot = PAPER["table1"][label]
        t.add(
            label,
            f"{prof.corner_force_s:7.1f} ({prof.corner_force_frac:4.0%})",
            f"{prof.cg_solver_s:7.1f} ({prof.cg_frac:4.0%})",
            f"{prof.total_s:7.1f}",
            f"{p_cf:7.1f} ({p_cf / p_tot:4.0%})",
            f"{p_cg:7.1f} ({p_cg / p_tot:4.0%})",
            f"{p_tot:7.1f}",
        )
    t.print()
    return profiles


def test_table1_cpu_profile(benchmark):
    profiles = benchmark.pedantic(compute, rounds=1, iterations=1)
    for label, prof in profiles.items():
        # The paper's CF range is 55-75%; our CG share runs below the
        # paper's 20-34% because our Jacobi-PCG converges in fewer
        # iterations than BLAST's solver (see EXPERIMENTS.md).
        assert 0.50 <= prof.corner_force_frac <= 0.90, label
        assert 0.04 <= prof.cg_frac <= 0.40, label
    # Corner-force share grows with order; between the adjacent Q3/Q4
    # rows our model is near-flat (within noise of the paper's 70->76%
    # step), so assert non-decrease with a small tolerance — the Q2->Q4
    # trend is pinned strictly in the unit tests.
    assert (
        profiles["2D: Q4-Q3"].corner_force_frac
        >= profiles["2D: Q3-Q2"].corner_force_frac - 0.03
    )
    # Per-step Q4/Q3 corner-force cost at the same mesh: paper 2.74x.
    ratio = (profiles["2D: Q4-Q3"].corner_force_s / CONFIGS["2D: Q4-Q3"][1]) / (
        profiles["2D: Q3-Q2"].corner_force_s / CONFIGS["2D: Q3-Q2"][1]
    )
    assert 1.8 <= ratio <= 3.8


if __name__ == "__main__":
    run()
