"""Figure 7: performance of kernels 3, 4, 7 across optimization versions.

v1 (naive/texture) -> v2 (shared memory) -> v3 (blocked + autotuned),
plus the cublasDgemmBatched alternative for kernel 7. The paper's claim
is the ladder ordering and the large v3 margin over the library.
"""

from _common import reference_workload

from repro.analysis.report import Table
from repro.gpu import execute_kernel, get_gpu
from repro.kernels.k34_custom_gemm import kernel3_cost, kernel4_cost
from repro.kernels.k7_force import kernel7_cost


def compute():
    cfg = reference_workload()
    k20 = get_gpu("K20")
    data = {}
    for name, builder, versions in (
        ("kernel 3", kernel3_cost, ("v1", "v2", "v3")),
        ("kernel 4", kernel4_cost, ("v1", "v2", "v3")),
        ("kernel 7", kernel7_cost, ("v1", "v2", "v3", "cublas")),
    ):
        data[name] = {
            v: execute_kernel(k20, builder(cfg, v)) for v in versions
        }
    return data


def run():
    data = compute()
    t = Table(
        "Figure 7: kernel versions on K20 (3D Q2-Q1, 16^3 zones)",
        ["kernel", "version", "Gflop/s", "time", "occupancy", "bound"],
    )
    for name, versions in data.items():
        for v, timing in versions.items():
            t.add(
                name, v, round(timing.gflops, 1), f"{timing.time_s * 1e3:8.2f} ms",
                f"{timing.occupancy.occupancy:5.1%}", timing.bound,
            )
    t.print()
    return data


def test_fig07_kernel_versions(benchmark):
    data = benchmark(compute)
    for name in ("kernel 3", "kernel 4", "kernel 7"):
        v = data[name]
        assert v["v2"].time_s < v["v1"].time_s, name
        assert v["v3"].time_s < v["v2"].time_s, name
    # The custom tuned kernel beats the vendor library handily.
    k7 = data["kernel 7"]
    assert k7["v3"].time_s < 0.5 * k7["cublas"].time_s


if __name__ == "__main__":
    run()
