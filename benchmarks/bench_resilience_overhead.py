"""Resilience overhead: checkpoint cadence vs replay cost.

The paper motivates the hybrid redesign with fault tolerance:
"Applications are more fault tolerant and runs faster, since the
frequency of checking points can be reduced." This bench prices that
claim on the simulated hardware. For a fixed mean-time-between-failures
M and per-checkpoint cost C, the expected overhead of a run of S steps
of duration t with a checkpoint every N steps is

    T_ovh(N) = (S/N) C  +  (S t / M)(N t / 2)       (write + replay)

minimized at Young's interval N* = sqrt(2 C M) / t. The optimal
*wall-clock* interval sqrt(2 C M) is hardware-independent, so the
faster hybrid steps mean more steps between checkpoints, fewer
checkpoints over the same simulation, and proportionally less absolute
overhead — exactly the paper's argument.

A second table validates the replay half of the model against the real
`ResilientDriver`: injected state corruption forces a rollback, and the
steps replayed grow with the checkpoint cadence.
"""

import math

from _common import measured_pcg_iterations, reference_workload

from repro import LagrangianHydroSolver, SedovProblem
from repro.analysis.report import Table
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.resilience import (
    CheckpointCostModel,
    FaultInjector,
    FaultSpec,
    ResilientDriver,
)
from repro.runtime.hybrid import HybridExecutor

MTBF_S = 6 * 3600.0  # node-scale mean time between failures
RUN_STEPS = 200_000  # a production-length Lagrangian run
CADENCES = (10, 30, 100, 300, 1000, 3000)


def _overhead_s(nsteps, t_step, cadence, ckpt_s, mtbf_s):
    """Expected write + replay overhead for the whole run (Young's model)."""
    writes = nsteps / cadence * ckpt_s
    faults = nsteps * t_step / mtbf_s
    replay = faults * (cadence * t_step / 2.0)
    return writes + replay


def compute():
    cfg = reference_workload()
    ex = HybridExecutor(
        cfg, get_cpu("E5-2670"), get_gpu("K20"), nmpi=8,
        pcg_iterations=measured_pcg_iterations(),
    )
    # Checkpoint = the unknowns (v, x kinematic vectors + e), as in
    # repro.io.checkpoint, at the paper's 16^3 Q2-Q1 size.
    state_bytes = 8 * (2 * cfg.kinematic_ndof_estimate * cfg.dim
                       + cfg.nzones * cfg.ndof_thermo_zone)
    ckpt_s = CheckpointCostModel().write_time_s(state_bytes)

    out = {"ckpt_s": ckpt_s, "modes": {}}
    for mode, t_step in (("cpu-only", ex.cpu_only().step.total_s),
                         ("hybrid", ex.hybrid().step.total_s)):
        n_opt = math.sqrt(2.0 * ckpt_s * MTBF_S) / t_step
        out["modes"][mode] = {
            "t_step": t_step,
            "n_opt": n_opt,
            "ckpts_at_opt": RUN_STEPS / n_opt,
            "overhead_at_opt": _overhead_s(RUN_STEPS, t_step, n_opt, ckpt_s, MTBF_S),
            "sweep": {
                n: _overhead_s(RUN_STEPS, t_step, n, ckpt_s, MTBF_S) for n in CADENCES
            },
        }
    return out


def replay_vs_cadence():
    """Real-driver validation: replayed steps grow with the cadence."""
    out = {}
    for cadence in (2, 3, 5):
        injector = FaultInjector([FaultSpec("state", 7)])
        driver = ResilientDriver(
            LagrangianHydroSolver(SedovProblem(dim=2, order=2, zones_per_dim=3)),
            injector=injector, checkpoint_every=cadence,
        )
        res = driver.run(t_final=100.0, max_steps=10)
        out[cadence] = res.report
    return out


def run():
    d = compute()
    t = Table(
        f"Checkpoint cadence (MTBF {MTBF_S / 3600:.0f} h, "
        f"checkpoint {d['ckpt_s'] * 1e3:.1f} ms, {RUN_STEPS} steps)",
        ["mode", "step (s)", "Young N*", "checkpoints", "overhead (s)", "of run"],
    )
    for mode, m in d["modes"].items():
        run_s = RUN_STEPS * m["t_step"]
        t.add(
            mode, f"{m['t_step']:.3f}", f"{m['n_opt']:.0f}",
            f"{m['ckpts_at_opt']:.0f}", f"{m['overhead_at_opt']:.1f}",
            f"{m['overhead_at_opt'] / run_s:.2%}",
        )
    t.print()

    sweep = Table(
        "Expected overhead (s) vs cadence (steps between checkpoints)",
        ["mode"] + [str(n) for n in CADENCES],
    )
    for mode, m in d["modes"].items():
        sweep.add(mode, *(f"{m['sweep'][n]:.1f}" for n in CADENCES))
    sweep.print()

    reports = replay_vs_cadence()
    rt = Table(
        "ResilientDriver: corruption at step 7, rollback to last snapshot",
        ["cadence", "rollbacks", "steps replayed", "checkpoints"],
    )
    for cadence, rep in reports.items():
        rt.add(cadence, rep.rollbacks, rep.steps_replayed, rep.checkpoints_written)
    rt.print()
    return d, reports


def test_resilience_overhead(benchmark):
    d = benchmark.pedantic(compute, rounds=1, iterations=1)
    cpu, hyb = d["modes"]["cpu-only"], d["modes"]["hybrid"]
    # The hybrid's faster steps widen the optimal cadence and cut both
    # the checkpoint count and the absolute overhead (the paper's claim).
    assert hyb["t_step"] < cpu["t_step"]
    assert hyb["n_opt"] > cpu["n_opt"]
    assert hyb["ckpts_at_opt"] < cpu["ckpts_at_opt"]
    assert hyb["overhead_at_opt"] < cpu["overhead_at_opt"]
    # The optimal wall-clock interval N* t is hardware-independent.
    assert hyb["n_opt"] * hyb["t_step"] == pytest_approx(cpu["n_opt"] * cpu["t_step"])
    # Young's optimum beats every swept cadence.
    for m in (cpu, hyb):
        assert all(m["overhead_at_opt"] <= v * (1 + 1e-12) for v in m["sweep"].values())

    reports = replay_vs_cadence()
    replayed = [reports[c].steps_replayed for c in (2, 3, 5)]
    assert all(rep.rollbacks == 1 for rep in reports.values())
    # Sparser checkpoints -> longer replay after the same fault.
    assert replayed == sorted(replayed) and replayed[0] < replayed[-1]


def pytest_approx(x):
    import pytest

    return pytest.approx(x, rel=1e-9)


if __name__ == "__main__":
    run()
