"""Table 3: operand counts of the custom batched GEMMs.

"For example, in kernel 3 each quadrature point corresponds to a matrix
B and each zone corresponds to a matrix A":

    kernel 3: num A = zones,        num B = points, num C = zones*points
    kernel 4: num A = zones*points, num B = points, num C = zones*points
    kernel 7: num A = zones,        num B = 1,      num C = zones

Structural bench over the actual solver configuration.
"""

from _common import reference_workload

from repro.analysis.report import Table


def compute():
    cfg = reference_workload()
    Z, Q = cfg.nzones, cfg.nqp
    return {
        "kernel 3": (Z, Q, Z * Q),
        "kernel 4": (Z * Q, Q, Z * Q),
        "kernel 7": (Z, 1, Z),
        "config": cfg,
    }


def run():
    data = compute()
    cfg = data["config"]
    t = Table(
        f"Table 3: matrix counts ({cfg.describe()})",
        ["name", "num A", "num B", "num C"],
    )
    for name in ("kernel 3", "kernel 4", "kernel 7"):
        a, b, c = data[name]
        t.add(name, a, b, c)
    t.print()
    return data


def test_table3_matrix_counts(benchmark):
    data = benchmark(compute)
    cfg = data["config"]
    Z, Q = cfg.nzones, cfg.nqp
    assert data["kernel 3"] == (Z, Q, Z * Q)
    assert data["kernel 4"] == (Z * Q, Q, Z * Q)
    assert data["kernel 7"] == (Z, 1, Z)
    # "number of quadrature points << zones" — the reuse kernel 3 exploits.
    assert Q < Z


if __name__ == "__main__":
    run()
