"""Table 2: the kernel inventory of the redesigned implementation.

Structural bench: regenerates the 11-kernel table and verifies each
kernel has a working cost descriptor on the K20 at the paper's Q2-Q1
configuration.
"""

from _common import reference_workload

from repro.analysis.report import Table
from repro.gpu import execute_kernel, get_gpu
from repro.kernels.k11_spmv import kernel11_cost
from repro.kernels.k12_pointwise import kernel1_cost, kernel2_cost
from repro.kernels.k34_custom_gemm import kernel3_cost, kernel4_cost
from repro.kernels.k56_dgemm_batched import kernel5_cost, kernel6_cost
from repro.kernels.k7_force import kernel7_cost
from repro.kernels.k810_gemv import kernel10_cost, kernel8_cost
from repro.kernels.k9_pcg import pcg_step_costs
from repro.kernels.registry import all_kernels

COST_BUILDERS = {
    1: lambda cfg: [kernel1_cost(cfg)],
    2: lambda cfg: [kernel2_cost(cfg)],
    3: lambda cfg: [kernel3_cost(cfg)],
    4: lambda cfg: [kernel4_cost(cfg)],
    5: lambda cfg: [kernel5_cost(cfg)],
    6: lambda cfg: [kernel6_cost(cfg)],
    7: lambda cfg: [kernel7_cost(cfg)],
    8: lambda cfg: [kernel8_cost(cfg)],
    9: lambda cfg: pcg_step_costs(cfg, 20.0, solves=cfg.dim),
    10: lambda cfg: [kernel10_cost(cfg)],
    11: lambda cfg: [kernel11_cost(cfg)],
}


def compute():
    cfg = reference_workload()
    k20 = get_gpu("K20")
    rows = []
    for spec in all_kernels():
        costs = COST_BUILDERS[spec.number](cfg)
        time_s = sum(execute_kernel(k20, c).time_s for c in costs)
        rows.append((spec, time_s, len(costs)))
    return rows


def run():
    rows = compute()
    t = Table(
        "Table 2: kernel inventory (3D Q2-Q1, 16^3 zones, K20)",
        ["no.", "kernel", "purpose", "modelled time"],
    )
    for spec, time_s, nparts in rows:
        label = spec.name + (" (kernel set)" if nparts > 1 else "")
        t.add(spec.number, label, spec.purpose, f"{time_s * 1e3:8.2f} ms")
    t.print()
    return rows


def test_table2_kernel_inventory(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert len(rows) == 11
    assert all(time_s > 0 for _, time_s, _ in rows)
    # Kernel 9 is "a set of kernels instead of one single kernel".
    k9 = next(r for r in rows if r[0].number == 9)
    assert k9[2] > 1


if __name__ == "__main__":
    run()
