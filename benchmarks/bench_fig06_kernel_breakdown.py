"""Figure 6: per-kernel GPU time breakdown, base vs optimized.

Left panel (base): kernel_loop_quadrature_point dominates (~65%), the
PCG's CsrMv takes ~30%. Right panel (optimized): the quadrature loop's
replacement (kernels 1-6) drops to ~25% and CsrMv rises to ~65% "because
the total time is reduced. ... The CsrMv_ci_kernel time remains the
same in the two implementations."
"""

from _common import measured_pcg_iterations, reference_workload

from repro.analysis.profiles import kernel_breakdown
from repro.analysis.report import Table, paper_vs_measured
from repro.gpu import get_gpu

PAPER_SHARES = {"base_quadloop": 0.65, "base_spmv": 0.30, "opt_k16": 0.25, "opt_spmv": 0.65}


def compute():
    cfg = reference_workload()
    iters = measured_pcg_iterations()
    k20 = get_gpu("K20")
    out = {}
    for impl in ("base", "optimized"):
        shares = kernel_breakdown(cfg, k20, impl, pcg_iterations=iters)
        out[impl] = shares
    base = {s.name: s for s in out["base"]}
    opt = {s.name: s for s in out["optimized"]}
    quadloop_share = sum(
        s.share for s in out["base"] if s.name.startswith("kernel_loop_quadrature_point")
    )
    spmv_base = sum(s.share for s in out["base"] if s.name.startswith("csrMv"))
    spmv_opt = sum(s.share for s in out["optimized"] if s.name.startswith("csrMv"))
    k16_opt = sum(
        s.share
        for s in out["optimized"]
        if s.name.startswith(
            ("kernel_CalcAjugate", "kernel_loop_grad_v", "kernel_PzVz",
             "kernel_Phi_sigma", "kernel_NN_dgemm", "kernel_NT_dgemm")
        )
    )
    spmv_time_base = sum(s.time_s for s in out["base"] if s.name.startswith("csrMv"))
    spmv_time_opt = sum(s.time_s for s in out["optimized"] if s.name.startswith("csrMv"))
    return {
        "breakdowns": out,
        "quadloop_share": quadloop_share,
        "spmv_base": spmv_base,
        "spmv_opt": spmv_opt,
        "k16_opt": k16_opt,
        "spmv_time_base": spmv_time_base,
        "spmv_time_opt": spmv_time_opt,
    }


def run():
    data = compute()
    for impl, shares in data["breakdowns"].items():
        t = Table(f"Figure 6 ({impl}): kernel time shares", ["kernel", "time", "share"])
        for s in shares:
            t.add(s.name, f"{s.time_s * 1e3:8.2f} ms", f"{s.share:5.1%}")
        t.print()
    paper_vs_measured(
        "Paper vs measured (shares of one GPU step)",
        [
            ("base: quadrature-point loop", "65%", f"{data['quadloop_share']:.0%}"),
            ("base: CsrMv (SpMV)", "30%", f"{data['spmv_base']:.0%}"),
            ("optimized: kernels 1-6", "25%", f"{data['k16_opt']:.0%}"),
            ("optimized: CsrMv (SpMV)", "65%", f"{data['spmv_opt']:.0%}"),
        ],
    ).print()
    return data


def test_fig06_kernel_breakdown(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Shape: the monolith dominates the base; SpMV dominates the redesign.
    assert data["quadloop_share"] > 0.45
    assert data["spmv_opt"] > data["spmv_base"]
    assert data["spmv_opt"] > 0.45
    assert data["k16_opt"] < data["quadloop_share"]
    # The SpMV's absolute time is identical in both implementations.
    assert abs(data["spmv_time_base"] - data["spmv_time_opt"]) < 1e-12


if __name__ == "__main__":
    run()
