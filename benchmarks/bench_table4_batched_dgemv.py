"""Table 4: custom batched DGEMV (kernel 8) vs streamed cublasDgemv.

Paper, on one C2050: streamed cublasDgemv 0.2 Gflop/s, custom kernel 8
18 Gflop/s (90x), theoretical peak 35.5 Gflop/s. Shapes: 4096 batches of
81 x 8 matrices against length-8 vectors.
"""

from _common import PAPER

from repro.analysis.report import paper_vs_measured
from repro.gpu import execute_kernel, get_gpu
from repro.kernels.cublas import streamed_cublas_dgemv_gflops
from repro.kernels.k810_gemv import batched_dgemv_cost, batched_dgemv_roofline_gflops

BATCHES, M, N = 4096, 81, 8


def compute():
    c2050 = get_gpu("C2050")
    custom = execute_kernel(c2050, batched_dgemv_cost(BATCHES, M, N))
    cublas = streamed_cublas_dgemv_gflops(c2050, BATCHES, M, N)
    roofline = batched_dgemv_roofline_gflops(c2050, M, N)
    return {
        "custom_gflops": custom.gflops,
        "cublas_gflops": cublas,
        "roofline_gflops": roofline,
        "ratio": custom.gflops / cublas,
    }


def run():
    d = compute()
    p = PAPER["table4"]
    paper_vs_measured(
        "Table 4: batched DGEMV on C2050 (Gflop/s), 4096 batches of 81x8",
        [
            ("streamed cublasDgemv", p["streamed_cublas"], round(d["cublas_gflops"], 2)),
            ("custom kernel 8", p["kernel8"], round(d["custom_gflops"], 1)),
            ("theoretical peak", p["theoretical"], round(d["roofline_gflops"], 1)),
            ("custom / cublas", "90x", f"{d['ratio']:.0f}x"),
        ],
    ).print()
    return d


def test_table4_batched_dgemv(benchmark):
    import pytest

    d = benchmark(compute)
    assert d["custom_gflops"] == pytest.approx(18.0, rel=0.25)
    assert d["cublas_gflops"] == pytest.approx(0.2, rel=0.4)
    assert d["roofline_gflops"] == pytest.approx(35.5, rel=0.15)
    assert 40 <= d["ratio"] <= 180


if __name__ == "__main__":
    run()
