"""Figure 2: the shock triple-point at increasing FE order.

The paper's figure shows the rolled-up interface sharpening from Q2-Q1
to Q8-Q7. We run the real triple-point problem at two orders on the
same zone budget and report resolution metrics: the density field's
dynamic range and total variation grow with order as finer features are
captured (absolute flow detail at these tiny meshes is of course far
from the paper's production resolution).
"""

import numpy as np

from repro import LagrangianHydroSolver, TriplePointProblem
from repro.analysis.report import Table


def one_order(order: int, t_final: float = 0.35):
    problem = TriplePointProblem(order=order, nx=14, ny=6)
    solver = LagrangianHydroSolver(problem)
    result = solver.run(t_final=t_final)
    rho = solver.density_at_points()
    drift = abs(result.energy_change) / result.energy_history[0].total
    variation = float(np.abs(np.diff(np.sort(rho.ravel()))).sum())
    return {
        "order": order,
        "steps": result.steps,
        "rho_min": float(rho.min()),
        "rho_max": float(rho.max()),
        "dynamic_range": float(rho.max() / rho.min()),
        "variation": variation,
        "energy_drift": drift,
        "thermo_dofs": solver.thermodynamic.ndof,
    }


def compute():
    return [one_order(2), one_order(4)]


def run():
    rows = compute()
    t = Table(
        "Figure 2: triple point, p-refinement on a fixed mesh",
        ["method", "thermo dofs", "rho min", "rho max", "range", "energy drift"],
    )
    for r in rows:
        t.add(
            f"Q{r['order']}-Q{r['order'] - 1}",
            r["thermo_dofs"],
            round(r["rho_min"], 4),
            round(r["rho_max"], 4),
            round(r["dynamic_range"], 2),
            f"{r['energy_drift']:.2e}",
        )
    t.print()
    return rows


def test_fig02_triple_point_orders(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    q2, q4 = rows
    # Both runs conserve energy; the higher order resolves more of the
    # density contrast on the same mesh.
    for r in rows:
        assert r["energy_drift"] < 1e-10
    assert q4["dynamic_range"] > q2["dynamic_range"] * 0.9
    assert q4["thermo_dofs"] > q2["thermo_dofs"]


if __name__ == "__main__":
    run()
