"""Table 7: greenup of the hybrid solution over CPU-only.

    Method   Power Efficiency  Speedup  Greenup     (paper)
    Q2-Q1    0.67              1.9      1.27
    Q4-Q3    0.57              2.5      1.42

"It saved 27% and 42% of energy, respectively" — greenup = powerup x
speedup, with powers summed from the Figure 15 (GPU) and Figure 16
(CPU) stable levels.
"""

from _common import PAPER, measured_pcg_iterations

from repro.analysis.report import Table
from repro.cpu import get_cpu
from repro.gpu import get_gpu
from repro.kernels import FEConfig
from repro.runtime.hybrid import HybridExecutor

CONFIGS = {"Q2-Q1": FEConfig(3, 2, 16**3), "Q4-Q3": FEConfig(3, 4, 8**3)}


def compute():
    iters = measured_pcg_iterations()
    out = {}
    for label, cfg in CONFIGS.items():
        ex = HybridExecutor(
            cfg, get_cpu("E5-2670"), get_gpu("K20"), nmpi=8, pcg_iterations=iters
        )
        out[label] = ex.greenup_report(method=label)
    return out


def run():
    reports = compute()
    t = Table(
        "Table 7: CPU-GPU greenup over CPU (3D Sedov)",
        ["method", "powerup", "speedup", "greenup", "energy saved",
         "paper powerup", "paper speedup", "paper greenup"],
    )
    paper = {
        "Q2-Q1": (PAPER["table7_powerup_q2"], PAPER["fig11_speedup_q2"], PAPER["table7_greenup_q2"]),
        "Q4-Q3": (PAPER["table7_powerup_q4"], PAPER["fig11_speedup_q4"], PAPER["table7_greenup_q4"]),
    }
    for label, rep in reports.items():
        pp, ps, pg = paper[label]
        t.add(
            label, round(rep.powerup, 2), round(rep.speedup, 2),
            round(rep.greenup, 2), f"{rep.energy_saved_fraction:.0%}",
            pp, ps, pg,
        )
    t.print()
    return reports


def test_table7_greenup(benchmark):
    d = benchmark.pedantic(compute, rounds=1, iterations=1)
    q2, q4 = d["Q2-Q1"], d["Q4-Q3"]
    # The identity the metric is built on.
    import pytest

    for rep in (q2, q4):
        assert rep.greenup == pytest.approx(rep.powerup * rep.speedup)
        # Hybrid draws more power yet saves energy.
        assert rep.powerup < 1.0
        assert rep.greenup > 1.0
    # Paper's shape: higher order -> lower powerup, higher greenup.
    assert q4.powerup < q2.powerup + 0.05
    assert q4.greenup > q2.greenup
    # Magnitudes within a loose band of the paper's 1.27 / 1.42.
    assert 1.05 <= q2.greenup <= 2.1
    assert 1.15 <= q4.greenup <= 2.5


if __name__ == "__main__":
    run()
