"""Figure 16: CPU power while the GPU accelerates the corner force.

"Both of the two processors are busy. The total package power is around
75W and PP0 at 60W. ... Compared to Figure 14, CPU power is reduced by
20W." The cores now spend part of each step waiting on / feeding the
device, so package utilization — and RAPL power — drops.
"""

from _common import PAPER

from repro.analysis.report import paper_vs_measured
from repro.cpu import RAPLInterface, get_cpu
from repro.runtime.hybrid import HYBRID_CPU_UTILIZATION


def compute():
    e5 = get_cpu("E5-2670")
    rapl = RAPLInterface(e5)
    rapl.register_phase(0.0, 10.0, HYBRID_CPU_UTILIZATION)
    p = rapl.average_power(1.0, 9.0)
    full = RAPLInterface(e5)
    full.register_phase(0.0, 10.0, 1.0)
    p_full = full.average_power(1.0, 9.0)
    return {"hybrid": p, "cpu_only": p_full, "reduction_w": p_full["pkg"] - p["pkg"]}


def run():
    d = compute()
    paper_vs_measured(
        "Figure 16: package power with GPU acceleration",
        [
            ("package power", PAPER["fig16_pkg_w"], round(d["hybrid"]["pkg"], 1)),
            ("PP0 power", PAPER["fig16_pp0_w"], round(d["hybrid"]["pp0"], 1)),
            ("reduction vs CPU-only", "20 W", f"{d['reduction_w']:.1f} W"),
        ],
    ).print()
    return d


def test_fig16_cpu_power_hybrid(benchmark):
    import pytest

    d = benchmark(compute)
    assert d["hybrid"]["pkg"] == pytest.approx(75.0, rel=0.05)
    assert d["hybrid"]["pp0"] == pytest.approx(60.0, rel=0.05)
    assert d["reduction_w"] == pytest.approx(20.0, rel=0.15)
    # "We tested various orders of methods, but did not see any obvious
    # difference" — the utilization constant is order-independent by
    # construction; the hybrid draw is always below full load.
    assert d["hybrid"]["pkg"] < d["cpu_only"]["pkg"]


if __name__ == "__main__":
    run()
