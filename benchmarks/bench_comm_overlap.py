"""Communication/computation overlap: the distributed backend's knob.

The paper's MPI layer (Section 3.4) exchanges interface-dof force
contributions between the two corner-force phases; an implementation
that posts the exchange nonblocking and evaluates interior zones while
it is in flight hides the transfer behind compute. The distributed
backend reproduces that trade as a pure *pricing* knob: `overlap=on`
and `overlap=off` execute the same arithmetic in the same order
(states are bitwise identical), but the `CommLedger` settles the
modeled transfer time against the wall-clock window it was in flight.

This bench makes the run communication-bound (a slow alpha-beta
network under a small mesh), runs the same march both ways, and
reports the modeled step time

    modeled = wall + ledger.exposed_s

which `overlap=on` must strictly reduce. Every run appends to
BENCH_comm_overlap.json so the overlap win has a trajectory to regress
against.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # running from a source checkout without PYTHONPATH=src
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import RunConfig
from repro.backends import DistributedBackend
from repro.hydro.solver import LagrangianHydroSolver
from repro.problems import SedovProblem
from repro.runtime.mpi_sim import CommCostModel

#: A slow interconnect (5 ms latency, ~1 MB/s-ish beta) under a small
#: mesh: per-step comm cost far exceeds per-step compute, so whatever
#: the overlap hides is visible in the modeled total.
SLOW_NETWORK = CommCostModel(alpha_s=5e-3, beta_s_per_byte=1e-6)

RANKS = 2
STEPS = 8
ZONES = 6


def _march(overlap: bool) -> dict:
    backend = DistributedBackend(
        RANKS, overlap=overlap, cost_model=SLOW_NETWORK
    )
    solver = LagrangianHydroSolver(
        SedovProblem(dim=2, order=2, zones_per_dim=ZONES),
        RunConfig(),
        backend=backend,
    )
    t0 = time.perf_counter()
    result = solver.run(max_steps=STEPS)
    wall_s = time.perf_counter() - t0
    ledger = backend.comm.ledger
    traffic = backend.comm.traffic
    # The only *overlappable* comm is the interface-dof exchange (one
    # nonblocking sum per corner-force evaluation); the PCG's blocking
    # reductions are exposed in both modes, so the hidden time is best
    # read against the exchange total, not the whole comm bill.
    iface_bytes = backend._iface_dofs.size * solver.kinematic.dim * 8
    exchange_s = (
        result.workload.force_evals
        * SLOW_NETWORK.allreduce_time(backend.nranks, iface_bytes)
    )
    out = {
        "overlap": overlap,
        "steps": result.steps,
        "wall_s": wall_s,
        "comm_total_s": ledger.total_s,
        "comm_hidden_s": ledger.hidden_s,
        "comm_exposed_s": ledger.exposed_s,
        "exchange_s": exchange_s,
        "modeled_s": wall_s + ledger.exposed_s,
        "modeled_ms_per_step": (wall_s + ledger.exposed_s) / result.steps * 1e3,
        "messages": traffic.messages,
        "bytes": traffic.bytes,
        "state": result.state,
    }
    solver.close()
    return out


def compute() -> dict:
    on = _march(overlap=True)
    off = _march(overlap=False)
    # The knob is pricing-only: the physics must be bitwise identical
    # and the traffic unchanged.
    assert np.array_equal(on["state"].v, off["state"].v)
    assert np.array_equal(on["state"].e, off["state"].e)
    assert np.array_equal(on["state"].x, off["state"].x)
    assert on["bytes"] == off["bytes"] and on["messages"] == off["messages"]
    for row in (on, off):
        del row["state"]
    return {
        "ranks": RANKS,
        "steps": STEPS,
        "zones_per_dim": ZONES,
        "alpha_s": SLOW_NETWORK.alpha_s,
        "beta_s_per_byte": SLOW_NETWORK.beta_s_per_byte,
        "on": on,
        "off": off,
        "modeled_speedup": off["modeled_s"] / on["modeled_s"],
        "hidden_exchange_fraction": (
            (on["comm_hidden_s"] - off["comm_hidden_s"]) / on["exchange_s"]
        ),
    }


def _append_record(d: dict, path: Path | None = None) -> Path:
    from repro.analysis.record import append_bench_record

    return append_bench_record(d, path or _default_json_path())


def _default_json_path() -> Path:
    root = Path(__file__).resolve().parent.parent
    return root / "BENCH_comm_overlap.json"


def run() -> dict:
    d = compute()
    print(f"comm/compute overlap (sedov {ZONES}x{ZONES} Q2, "
          f"{RANKS} ranks, {STEPS} steps, "
          f"alpha {d['alpha_s'] * 1e3:.0f} ms)")
    print(f"{'mode':12s} {'wall ms/st':>10} {'comm ms':>9} {'hidden ms':>10} "
          f"{'exposed ms':>10} {'modeled ms/st':>13}")
    for label, row in (("overlap on", d["on"]), ("overlap off", d["off"])):
        print(f"{label:12s} {row['wall_s'] / row['steps'] * 1e3:10.2f} "
              f"{row['comm_total_s'] * 1e3:9.1f} "
              f"{row['comm_hidden_s'] * 1e3:10.1f} "
              f"{row['comm_exposed_s'] * 1e3:10.1f} "
              f"{row['modeled_ms_per_step']:13.2f}")
    saved_ms = (d["off"]["modeled_s"] - d["on"]["modeled_s"]) * 1e3
    print(f"overlap saves {saved_ms:.1f} ms modeled "
          f"({d['hidden_exchange_fraction']:.0%} of the interface exchange "
          f"hidden under interior zones); physics bitwise identical")
    path = _append_record(d)
    print(f"appended record to {path}")
    return d


def test_comm_overlap(benchmark):
    d = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Same modeled comm volume both ways; overlap hides some of it.
    assert d["on"]["comm_total_s"] > 0
    assert abs(d["on"]["comm_total_s"] - d["off"]["comm_total_s"]) < 1e-12
    assert d["on"]["comm_hidden_s"] > d["off"]["comm_hidden_s"]
    # The headline: overlap=on strictly reduces the modeled step time on
    # a communication-bound configuration.
    assert d["on"]["modeled_s"] < d["off"]["modeled_s"]


if __name__ == "__main__":
    run()
