"""Figure 8: memory bandwidth of base vs optimized kernels, per level.

"All the optimized kernels exceeded the base implementation in bandwidth
of L1/Shared and device memory except kernel 3 in device memory, which
instead has very high bandwidth in L1/shared memory. ... Because on-chip
memory is much faster than off-chip memory, the bandwidth of on-chip
memory has a greater impact on performance."

We report achieved GB/s at the three levels for the base monolith and
each optimized kernel (theoretical device peak on K20: 208 GB/s).
"""

from _common import reference_workload

from repro.analysis.report import Table
from repro.gpu import execute_kernel, get_gpu
from repro.kernels.base_quadloop import base_quadloop_cost
from repro.kernels.k12_pointwise import kernel1_cost, kernel2_cost
from repro.kernels.k34_custom_gemm import kernel3_cost, kernel4_cost
from repro.kernels.k56_dgemm_batched import kernel5_cost
from repro.kernels.k7_force import kernel7_cost


def compute():
    cfg = reference_workload()
    k20 = get_gpu("K20")
    kernels = {
        "base quadloop": base_quadloop_cost(cfg),
        "kernel 1 (reg)": kernel1_cost(cfg, "register"),
        "kernel 2 (reg)": kernel2_cost(cfg, "register"),
        "kernel 3 (v3)": kernel3_cost(cfg, "v3"),
        "kernel 4 (v3)": kernel4_cost(cfg, "v3"),
        "kernel 5 (tuned)": kernel5_cost(cfg, "tuned"),
        "kernel 7 (v3)": kernel7_cost(cfg, "v3"),
    }
    return {name: execute_kernel(k20, c) for name, c in kernels.items()}


def run():
    data = compute()
    t = Table(
        "Figure 8: achieved bandwidth (GB/s) per memory level (K20 device peak: 208)",
        ["kernel", "L1/shared", "L2", "device"],
    )
    for name, timing in data.items():
        bw = timing.bandwidth_gbs
        t.add(name, round(bw["shared"], 1), round(bw["l2"], 1), round(bw["dram"], 1))
    t.print()
    return data


def test_fig08_bandwidth(benchmark):
    data = benchmark(compute)
    base = data["base quadloop"].bandwidth_gbs
    # Optimized compute kernels exploit on-chip memory: their L1/shared
    # bandwidth exceeds the base implementation's.
    for name in ("kernel 3 (v3)", "kernel 4 (v3)", "kernel 7 (v3)"):
        assert data[name].bandwidth_gbs["shared"] > base["shared"], name
    # Kernel 3's signature: enormous on-chip bandwidth, modest device
    # bandwidth (the exception the paper calls out).
    k3 = data["kernel 3 (v3)"].bandwidth_gbs
    assert k3["shared"] > 5 * k3["dram"]
    # Streaming kernels 1-2 are L2-friendly (the paper's observation).
    assert data["kernel 1 (reg)"].bandwidth_gbs["l2"] > 0
    # Nothing exceeds the device peak.
    for name, timing in data.items():
        assert timing.bandwidth_gbs["dram"] <= 208.0 + 1e-9, name


if __name__ == "__main__":
    run()
