"""Figure 14: RAPL power of the two Sandy Bridge packages, CPU-only run.

"The full loaded package power is 95W with DRAM at 15W. The idle power
is slightly lower than 20W with DRAM almost at 0" — one package loaded
with the 8 MPI tasks, the other idle, 3D Q2-Q1 Sedov without the GPU.
We drive the simulated RAPL interface through the same load pattern and
read back the trace.
"""

from _common import PAPER

from repro.analysis.report import Table, paper_vs_measured
from repro.cpu import RAPLInterface, get_cpu

RUN_SECONDS = 15.0


def compute():
    e5 = get_cpu("E5-2670")
    pkg0 = RAPLInterface(e5)  # hosts all 8 MPI tasks
    pkg1 = RAPLInterface(e5)  # kept idle, as in the figure
    pkg0.register_phase(1.0, 1.0 + RUN_SECONDS, 1.0)
    window = (2.0, RUN_SECONDS)  # steady-state section
    return {
        "pkg0": pkg0.average_power(*window),
        "pkg1": pkg1.average_power(*window),
        "trace0": pkg0.power_trace(0.0, RUN_SECONDS + 2.0, period_s=1.0),
    }


def run():
    d = compute()
    t = Table(
        "Figure 14: package power during the CPU-only run",
        ["domain", "loaded pkg 0", "idle pkg 1"],
    )
    t.add("package (W)", round(d["pkg0"]["pkg"], 1), round(d["pkg1"]["pkg"], 1))
    t.add("PP0 / cores (W)", round(d["pkg0"]["pp0"], 1), round(d["pkg1"]["pp0"], 1))
    t.add("DRAM (W)", round(d["pkg0"]["dram"], 1), round(d["pkg1"]["dram"], 1))
    t.print()
    paper_vs_measured(
        "Paper vs measured",
        [
            ("loaded package", PAPER["fig14_pkg_full_w"], round(d["pkg0"]["pkg"], 1)),
            ("loaded DRAM", PAPER["fig14_dram_w"], round(d["pkg0"]["dram"], 1)),
            ("idle package", "<20", round(d["pkg1"]["pkg"], 1)),
            ("idle DRAM", "~0", round(d["pkg1"]["dram"], 1)),
        ],
    ).print()
    return d


def test_fig14_cpu_power(benchmark):
    import pytest

    d = benchmark(compute)
    assert d["pkg0"]["pkg"] == pytest.approx(95.0, rel=0.02)
    assert d["pkg0"]["dram"] == pytest.approx(15.0, rel=0.05)
    assert d["pkg1"]["pkg"] < 20.0
    assert d["pkg1"]["dram"] < 1.0
    # The trace shows the load step (idle -> loaded -> idle edges).
    pkgs = [p for _, p, _, _ in d["trace0"]]
    assert pkgs[0] < 25.0 and max(pkgs) > 90.0


if __name__ == "__main__":
    run()
