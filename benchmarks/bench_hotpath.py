"""Hot-path perf regression: fused workspace engine + zone parallelism.

The paper's whole argument is that restructuring the corner-force phase
around the memory hierarchy wins wall-clock (and with it, energy —
"racing to idle"). This bench is the NumPy analogue of that claim and
this repo's perf-regression gate: it times one corner-force evaluation
(Q2-Q1 and Q4-Q3) and the full solver step under the legacy
allocate-per-call engine, the fused zero-allocation workspace engine,
and the shared-memory zone-parallel executor, checks the three agree to
~1e-13, and appends every run to BENCH_hotpath.json so any future
slowdown of the hot path is visible as a broken trajectory.

`--quick` is the tier-1 perf-smoke target (must finish well under 60 s);
the ~2x fused speedup is host-independent, while the parallel row only
beats serial on multi-core hosts (chunk count = worker count, the
paper's OpenMP zone partitioning).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a source checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.hotpath import run_hotpath_bench


def run(quick: bool = False, workers: int | None = None, json_path=None) -> dict:
    return run_hotpath_bench(quick=quick, workers=workers, json_path=json_path)


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small meshes / few reps (< 60 s perf smoke)")
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel-executor worker count (default: all cores)")
    ap.add_argument("--json", default=None, help="override BENCH_hotpath.json path")
    a = ap.parse_args()
    run(quick=a.quick, workers=a.workers, json_path=a.json)
