"""Figure 1: DP performance per watt, NVIDIA GPUs vs Intel CPUs.

The paper motivates the whole effort with the generation-over-generation
gap between GPU and CPU peak double-precision Gflop/s per TDP watt. We
regenerate both series from the device catalogs.
"""

from repro.analysis.report import Series, Table
from repro.cpu.specs import CPU_CATALOG
from repro.gpu.specs import GPU_CATALOG


def compute():
    gpus = sorted(GPU_CATALOG.values(), key=lambda s: s.year)
    cpus = sorted(CPU_CATALOG.values(), key=lambda s: s.year)
    gpu_series = [(s.year, s.name, s.peak_dp_per_watt) for s in gpus]
    cpu_series = [(s.year, s.name, s.peak_dp_per_watt) for s in cpus]
    return gpu_series, cpu_series


def run():
    gpu_series, cpu_series = compute()
    t = Table("Figure 1: peak DP Gflop/s per TDP watt", ["year", "device", "GF/W"])
    for year, name, ppw in gpu_series:
        t.add(year, f"GPU {name}", round(ppw, 2))
    for year, name, ppw in cpu_series:
        t.add(year, f"CPU {name}", round(ppw, 2))
    t.print()
    s = Series("GPU GF/W by year")
    for year, _, ppw in gpu_series:
        s.add(year, ppw)
    print(s.render())
    s = Series("CPU GF/W by year")
    for year, _, ppw in cpu_series:
        s.add(year, ppw)
    print(s.render())
    return gpu_series, cpu_series


def test_fig01_perf_per_watt(benchmark):
    gpu_series, cpu_series = benchmark(compute)
    # Shape: contemporary GPUs beat contemporary CPUs, and the gap grows.
    k20 = next(p for _, n, p in gpu_series if n == "K20")
    snb = next(p for _, n, p in cpu_series if n == "E5-2670")
    assert k20 > 3 * snb
    gpu_by_year = [p for _, _, p in gpu_series]
    assert gpu_by_year == sorted(gpu_by_year) or gpu_by_year[-1] > gpu_by_year[0]


if __name__ == "__main__":
    run()
