"""Ablation: kernel 7 blocking size sweep.

The paper's v3 blocks Az into column slabs to shrink the shared tile
and raise occupancy, with the slab width autotuned. This sweep shows
the whole trade-off curve: tiny slabs under-use shared memory reuse,
huge slabs collapse occupancy back to v2 levels, and the feasible
optimum sits in between — per FE order (Q4's rows are 4.6x wider, so
its feasible slabs are narrower).
"""

from _common import reference_workload

from repro.analysis.report import Table
from repro.gpu import execute_kernel, get_gpu
from repro.kernels import FEConfig
from repro.kernels.k7_force import feasible_block_cols, kernel7_cost

SLABS = [1, 2, 4, 8, 16, 32, 64]


def sweep(cfg: FEConfig):
    k20 = get_gpu("K20")
    rows = []
    for qb in SLABS:
        if qb > cfg.nqp:
            continue
        try:
            t = execute_kernel(k20, kernel7_cost(cfg, "v3", block_cols=qb))
        except ValueError:
            rows.append((qb, None))
            continue
        rows.append((qb, t))
    return rows


def compute():
    q2 = reference_workload()
    q4 = FEConfig(3, 4, 8**3)
    return {
        "Q2-Q1": sweep(q2),
        "Q4-Q3": sweep(q4),
        "feasible_q2": feasible_block_cols(q2, limit=64),
        "feasible_q4": feasible_block_cols(q4, limit=64),
    }


def run():
    data = compute()
    for label in ("Q2-Q1", "Q4-Q3"):
        t = Table(
            f"Ablation: kernel 7 column-block size ({label})",
            ["block cols", "Gflop/s", "occupancy", "bound"],
        )
        for qb, timing in data[label]:
            if timing is None:
                t.add(qb, "eliminated", "-", "shared overflow")
            else:
                t.add(qb, round(timing.gflops, 1),
                      f"{timing.occupancy.occupancy:5.1%}", timing.bound)
        t.print()
    print(f"feasible block cols: Q2 {data['feasible_q2']}, Q4 {data['feasible_q4']}")
    print()
    return data


def test_ablation_blocking(benchmark):
    data = benchmark(compute)
    # The feasible window shrinks at higher order.
    assert data["feasible_q4"] <= data["feasible_q2"]
    # Some slab beats both extremes for Q2 (a real trade-off exists).
    q2 = [(qb, t) for qb, t in data["Q2-Q1"] if t is not None]
    times = {qb: t.time_s for qb, t in q2}
    best = min(times, key=lambda qb: times[qb])
    assert times[best] <= times[min(times)] and times[best] <= times[max(times)]
    # Oversized slabs lose occupancy relative to the best.
    best_occ = dict(q2)[best].occupancy.occupancy
    big = max(times)
    assert dict(q2)[big].occupancy.occupancy <= best_occ + 1e-12


if __name__ == "__main__":
    run()
