"""Figure 4: kernels 1-2 with local-memory vs register-array workspaces.

The base build spills each thread's DIM x DIM workspaces to local
memory (physically DRAM); Kepler's doubled register file lets the
separated kernels keep them in registers — "kernel 2 achieved a 4x
speedup". 3D Q2-Q1 case on K20, as in the paper.
"""

from _common import reference_workload

from repro.analysis.report import Table, paper_vs_measured
from repro.gpu import execute_kernel, get_gpu
from repro.kernels.k12_pointwise import kernel1_cost, kernel2_cost


def compute():
    cfg = reference_workload()
    k20 = get_gpu("K20")
    out = {}
    for num, builder in ((1, kernel1_cost), (2, kernel2_cost)):
        local = execute_kernel(k20, builder(cfg, "local"))
        reg = execute_kernel(k20, builder(cfg, "register"))
        out[num] = {
            "local_gflops": local.gflops,
            "register_gflops": reg.gflops,
            "speedup": local.time_s / reg.time_s,
            "local_bound": local.bound,
            "register_bound": reg.bound,
        }
    return out


def run():
    data = compute()
    t = Table(
        "Figure 4: kernel 1,2 — local memory vs register arrays (K20, 3D Q2-Q1)",
        ["kernel", "local Gflop/s", "register Gflop/s", "speedup", "local bound", "reg bound"],
    )
    for num, d in data.items():
        t.add(
            f"kernel {num}",
            round(d["local_gflops"], 2),
            round(d["register_gflops"], 2),
            f"{d['speedup']:.2f}x",
            d["local_bound"],
            d["register_bound"],
        )
    t.print()
    paper_vs_measured(
        "Paper vs measured", [("kernel 2 register speedup", "4x", f"{data[2]['speedup']:.2f}x")]
    ).print()
    return data


def test_fig04_register_vs_local(benchmark):
    data = benchmark(compute)
    assert data[1]["speedup"] > 1.5
    assert 2.5 <= data[2]["speedup"] <= 6.0  # the paper's 4x
    # Mechanism check: local spills are memory bound, registers compute.
    assert data[2]["local_bound"] in ("dram", "l2")
    assert data[2]["register_bound"] == "compute"


if __name__ == "__main__":
    run()
