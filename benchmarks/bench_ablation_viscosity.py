"""Ablation: tensor artificial viscosity coefficients.

The directional (tensor) viscosity is the reason kernels 1-2 carry
per-point SVD/eigen work at all. This ablation runs the same Sedov
blast with the viscosity disabled, weakened and at the reference
coefficients: without it the shock front rings (overshoots the strong-
shock density limit and rejects steps); with it the front is monotone.
"""

import numpy as np

from _common import PAPER

from repro.analysis.report import Table
from repro import LagrangianHydroSolver, SedovProblem
from repro.hydro.viscosity import ViscosityCoefficients

SETTINGS = {
    "off": ViscosityCoefficients(enabled=False),
    "weak (q1=0.1, q2=0.4)": ViscosityCoefficients(q1=0.1, q2=0.4),
    "reference (q1=0.5, q2=2)": ViscosityCoefficients(q1=0.5, q2=2.0),
}


def one(coeffs: ViscosityCoefficients, t_final: float = 0.15, max_steps: int = 1200):
    problem = SedovProblem(dim=2, order=2, zones_per_dim=8)
    problem.viscosity = lambda: coeffs  # override the problem default
    solver = LagrangianHydroSolver(problem)
    try:
        # Cap the steps: without viscosity the controller can limp along
        # on collapsing dt; hitting the cap counts as "did not complete".
        result = solver.run(t_final=t_final, max_steps=max_steps)
        rho = solver.density_at_points()
        return {
            "completed": result.reached_t_final,
            "steps": result.steps,
            "rejected": result.workload.rejected_steps,
            "rho_max": float(rho.max()),
            "drift": abs(result.energy_change) / result.energy_history[0].total,
        }
    except RuntimeError as err:
        return {"completed": False, "steps": -1, "rejected": -1,
                "rho_max": float("nan"), "drift": float("nan"), "error": str(err)}


def compute():
    return {name: one(c) for name, c in SETTINGS.items()}


def run():
    data = compute()
    t = Table(
        "Ablation: artificial viscosity (2D Q2-Q1 Sedov, gamma=1.4, limit rho=6)",
        ["setting", "completed", "steps", "rejected", "max density", "energy drift"],
    )
    for name, r in data.items():
        t.add(
            name, str(r["completed"]), r["steps"], r["rejected"],
            f"{r['rho_max']:.3f}" if np.isfinite(r["rho_max"]) else "-",
            f"{r['drift']:.2e}" if np.isfinite(r["drift"]) else "-",
        )
    t.print()
    return data


def test_ablation_viscosity(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    ref = data["reference (q1=0.5, q2=2)"]
    assert ref["completed"]
    assert ref["drift"] < 1e-10
    # Reference viscosity keeps the front at/below the strong-shock limit.
    limit = (1.4 + 1) / (1.4 - 1)
    assert ref["rho_max"] < 1.3 * limit
    # Turning the viscosity off (or way down) visibly degrades
    # robustness: the run tangles/aborts, needs rejections, or rings
    # past the reference solution's front.
    off = data["off"]
    degraded = (
        (not off["completed"])
        or off["rejected"] > ref["rejected"]
        or off["rho_max"] > ref["rho_max"] * 1.05
    )
    assert degraded


if __name__ == "__main__":
    run()
