"""Figure 13: strong scaling on SNL Shannon.

A fixed 32^3-zone domain divided over up to 16 dual-E5-2670 + dual-K20m
nodes; the paper shows near-linear scaling on a log-scaled time axis.
"""

from _common import measured_pcg_iterations

from repro.analysis.report import Series, Table
from repro.cluster import SHANNON, strong_scaling

NODES = [1, 2, 4, 8, 16]


def compute():
    return strong_scaling(
        SHANNON,
        total_zones=32**3,
        node_counts=NODES,
        pcg_iterations=measured_pcg_iterations(),
    )


def run():
    pts = compute()
    t = Table(
        "Figure 13: Shannon strong scaling, 32^3 domain",
        ["nodes", "time / step", "speedup", "parallel efficiency"],
    )
    base = pts[0].time_s
    for p in pts:
        t.add(p.nodes, f"{p.time_s * 1e3:8.1f} ms", f"{base / p.time_s:5.2f}x", f"{p.efficiency:.0%}")
    t.print()
    s = Series("time vs nodes (log-log linear = straight)")
    for p in pts:
        s.add(p.nodes, p.time_s)
    print(s.render())
    print()
    return pts


def test_fig13_strong_scaling(benchmark):
    pts = benchmark.pedantic(compute, rounds=1, iterations=1)
    times = [p.time_s for p in pts]
    # Monotone decrease with near-linear efficiency (the paper's line).
    assert all(b < a for a, b in zip(times, times[1:]))
    assert all(p.efficiency > 0.6 for p in pts)
    # Doubling nodes cuts time by >= ~1.5x through the measured range.
    for a, b in zip(times, times[1:]):
        assert a / b > 1.4


if __name__ == "__main__":
    run()
