"""Figure 5: autotuning kernel 3 over matrices-per-thread-block.

"N is the number of matrices performed in each thread block ... We find
32 delivered the best performance with an occupancy 98.3%" and the
tuned kernel "achieved 60% of theoretical peak performance on K20".

The bench runs the actual autotuner (sampling periods with noise) over
the candidate range; infeasible candidates (shared-memory overflow) are
constraint-eliminated exactly as Section 3.2.1 describes.
"""

from _common import reference_workload

from repro.analysis.report import Series, Table, paper_vs_measured
from repro.gpu import execute_kernel, get_gpu
from repro.kernels.k34_custom_gemm import kernel3_cost
from repro.tuning import Autotuner, ParamSpace

CANDIDATES = [1, 2, 4, 8, 16, 32, 48, 64, 128]


def compute():
    cfg = reference_workload()
    k20 = get_gpu("K20")

    def feasible(cand):
        try:
            kernel3_cost(cfg, "v3", cand["m"])
            execute_kernel(k20, kernel3_cost(cfg, "v3", cand["m"]))
            return True
        except ValueError:
            return False

    space = ParamSpace(m=CANDIDATES).constrain(feasible)

    def evaluate(cand):
        return execute_kernel(k20, kernel3_cost(cfg, "v3", cand["m"])).time_s

    tuner = Autotuner(evaluate, space, steps_per_period=40, noise_rel=0.03, seed=11)
    result = tuner.tune()

    curve = []
    for cand, t in sorted(result.samples, key=lambda kv: kv[0]["m"]):
        timing = execute_kernel(k20, kernel3_cost(cfg, "v3", cand["m"]))
        curve.append((cand["m"], timing.gflops, timing.occupancy.occupancy))
    best_timing = execute_kernel(k20, kernel3_cost(cfg, "v3", result.best["m"]))
    # The kernel's own roofline: min(compute peak, dram roofline).
    c = best_timing.cost
    intensity = c.flops / c.dram_bytes
    roofline = min(k20.peak_dp_gflops, k20.mem_bandwidth_gbs * intensity)
    return {
        "curve": curve,
        "best_m": result.best["m"],
        "best_gflops": best_timing.gflops,
        "best_occupancy": best_timing.occupancy.occupancy,
        "roofline_gflops": roofline,
        "fraction_of_peak": best_timing.gflops / roofline,
        "eliminated": result.eliminated,
    }


def run():
    data = compute()
    t = Table(
        "Figure 5: kernel 3 tuning on K20 (3D Q2-Q1)",
        ["matrices/block", "Gflop/s", "occupancy"],
    )
    for m, gf, occ in data["curve"]:
        t.add(m, round(gf, 1), f"{occ:.1%}")
    t.print()
    s = Series("kernel3 Gflop/s vs matrices/block")
    for m, gf, _ in data["curve"]:
        s.add(m, gf)
    print(s.render())
    print(f"eliminated candidates (shared overflow): {data['eliminated']}")
    paper_vs_measured(
        "Paper vs measured",
        [
            ("best matrices/block", 32, data["best_m"]),
            ("occupancy at best", "98.3%", f"{data['best_occupancy']:.1%}"),
            ("fraction of theoretical peak", "60%", f"{data['fraction_of_peak']:.0%}"),
        ],
    ).print()
    return data


def test_fig05_kernel3_tuning(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert data["best_m"] == 32
    assert data["best_occupancy"] > 0.9
    assert 0.4 <= data["fraction_of_peak"] <= 0.8
    assert data["eliminated"] >= 1  # 128 (and any others) eliminated
    # Curve shape: rises to the optimum, dips past it.
    gf = {m: g for m, g, _ in data["curve"]}
    assert gf[32] > gf[1] * 2
    if 48 in gf:
        assert gf[48] < gf[32]


if __name__ == "__main__":
    run()
