"""Functional weak/strong scaling bench: measured curves vs the model.

The repo's Figure 12-13 machinery (`repro.cluster.scaling`) predicts
scaling from an alpha-beta-tree hardware model. This bench runs the
*actual* distributed solver at P = 1..64 simulated ranks — vectorized
rank stepping makes every point seconds of wall time — prices the
collectives each run really posted through the communicator's ledger,
and cross-checks the measured weak/strong efficiency curves against the
analytic model fed the same compute baseline (gate: 15% agreement). It
also gates the vectorized rank axis's raison d'etre: 256 simulated
ranks on a 16x16 Sedov must complete a 10-step budget in under 10 s of
wall time on one host. Every run appends to BENCH_scaling.json.

`--quick` shrinks the per-point step budget (< 60 s CI smoke).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a source checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.scaling_bench import run_scaling_bench


def run(quick: bool = False, json_path=None) -> dict:
    return run_scaling_bench(quick=quick, json_path=json_path)


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="fewer steps per point (< 60 s CI smoke)")
    ap.add_argument("--json", default=None,
                    help="override BENCH_scaling.json path")
    a = ap.parse_args()
    run(quick=a.quick, json_path=a.json)
