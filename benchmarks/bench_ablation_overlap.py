"""Ablation: asynchronous transfer/compute overlap (CUDA streams).

The paper's hybrid design launches kernels asynchronously (Section 3.3)
and keeps transfers minimal (Section 3.1.2). This ablation quantifies
the next step it leaves on the table: chunked double-buffered streams
that overlap PCI-E traffic with kernel execution. With the paper's
state-vector-only transfer plan the gain is small (transfers are
already tiny); with the naive full-matrix plan, overlap recovers some —
but nowhere near all — of the damage, confirming that *avoiding* the
traffic beats *hiding* it.
"""

from _common import reference_workload

from repro.analysis.report import Table
from repro.gpu import get_gpu
from repro.gpu.pcie import PCIeModel
from repro.gpu.streams import overlap_phase
from repro.kernels.registry import corner_force_costs


def compute():
    k20 = get_gpu("K20")
    cfg = reference_workload()
    costs = corner_force_costs(cfg, "optimized")
    ndof = cfg.kinematic_ndof_estimate
    nthermo = cfg.nzones * cfg.ndof_thermo_zone
    state_plan = PCIeModel.state_vectors_plan(ndof, nthermo, cfg.dim)
    full_plan = PCIeModel.full_matrix_plan(
        cfg.nzones, cfg.ndof_kin_zone, cfg.ndof_thermo_zone, cfg.dim, ndof, nthermo
    )
    out = {}
    for label, plan in (("state vectors (paper)", state_plan), ("full F matrix", full_plan)):
        for chunks in (1, 4, 16):
            ph = overlap_phase(
                k20, costs, plan.host_to_device, plan.device_to_host, chunks=chunks
            )
            out[(label, chunks)] = ph
    return out


def run():
    data = compute()
    t = Table(
        "Ablation: transfer/compute overlap (3D Q2-Q1, 16^3 zones, K20)",
        ["transfer plan", "chunks", "serial", "overlapped", "speedup", "hidden"],
    )
    for (label, chunks), ph in data.items():
        t.add(
            label, chunks,
            f"{ph.serial_s * 1e3:7.2f} ms", f"{ph.overlapped_s * 1e3:7.2f} ms",
            f"{ph.speedup:4.2f}x", f"{ph.overlap_efficiency:4.0%}",
        )
    t.print()
    return data


def test_ablation_overlap(benchmark):
    data = benchmark(compute)
    # The paper's transfer plan is compute dominated: nothing to hide.
    small = data[("state vectors (paper)", 16)]
    assert small.speedup < 1.1
    # The rejected full-matrix plan pays a real serial transfer penalty;
    # overlap claws some back but never beats the avoid-the-traffic plan.
    big = data[("full F matrix", 16)]
    assert big.serial_s > 1.1 * small.serial_s
    assert big.speedup > small.speedup
    assert big.overlapped_s >= small.overlapped_s
    # More chunks never hurt.
    assert data[("full F matrix", 16)].overlapped_s <= data[("full F matrix", 4)].overlapped_s + 1e-9


if __name__ == "__main__":
    run()
